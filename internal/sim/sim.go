// Package sim implements the synchronous round-based execution model of the
// dual graph paper (Section 2.1): in each round every active process decides
// whether to transmit; a transmitted message reaches all reliable
// out-neighbours, an adversary-chosen subset of unreliable out-neighbours,
// and the sender itself; receptions are then computed under one of the four
// collision rules CR1-CR4 with synchronous or asynchronous starts.
//
// Runs execute on a fixed network (Run) or on an epoch-scheduled
// time-varying one (RunDynamic): every graph.Schedule epoch boundary swaps
// the frozen network under the live processes while algorithm, adversary,
// and per-node result state survive, and the preallocated delivery buffers
// resize lazily. Both paths share one loop — Run is RunDynamic over a
// static schedule — so the static hot path is exactly what it always was.
package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"dualgraph/internal/graph"
)

// CollisionRule selects one of the paper's collision rules, in decreasing
// order of strength from the algorithm's point of view.
type CollisionRule int

// The four collision rules of Section 2.1.
const (
	// CR1: any process reached by two or more messages (including its own)
	// receives collision notification ⊤.
	CR1 CollisionRule = iota + 1
	// CR2: a sender always receives its own message; a non-sender reached by
	// two or more messages receives ⊤.
	CR2
	// CR3: a sender always receives its own message; a non-sender reached by
	// two or more messages hears silence ⊥ (no collision detection).
	CR3
	// CR4: a sender always receives its own message; for a non-sender
	// reached by two or more messages the adversary chooses between ⊥ and
	// one of the reaching messages (the weakest rule).
	CR4
)

// String implements fmt.Stringer.
func (c CollisionRule) String() string {
	switch c {
	case CR1:
		return "CR1"
	case CR2:
		return "CR2"
	case CR3:
		return "CR3"
	case CR4:
		return "CR4"
	}
	return fmt.Sprintf("CollisionRule(%d)", int(c))
}

// StartRule selects when processes begin executing.
type StartRule int

// Start rules of Section 2.1.
const (
	// SyncStart activates every process in round 1.
	SyncStart StartRule = iota + 1
	// AsyncStart activates a process the first time a message is delivered
	// to it (the source is active from round 1).
	AsyncStart
)

// String implements fmt.Stringer.
func (s StartRule) String() string {
	switch s {
	case SyncStart:
		return "sync"
	case AsyncStart:
		return "async"
	}
	return fmt.Sprintf("StartRule(%d)", int(s))
}

// ReceptionKind classifies what a process hears in a round.
type ReceptionKind int

// Reception kinds.
const (
	// Silence is ⊥: no message was heard.
	Silence ReceptionKind = iota + 1
	// Delivered means exactly one message was received.
	Delivered
	// Collision is ⊤: collision notification.
	Collision
)

// String implements fmt.Stringer.
func (k ReceptionKind) String() string {
	switch k {
	case Silence:
		return "⊥"
	case Delivered:
		return "msg"
	case Collision:
		return "⊤"
	}
	return fmt.Sprintf("ReceptionKind(%d)", int(k))
}

// Reception describes the outcome of a round for one process.
type Reception struct {
	// Kind is silence, a delivered message, or collision notification.
	Kind ReceptionKind
	// From is the sending node when Kind == Delivered.
	From graph.NodeID
	// FromProc is the sender's process identifier when Kind == Delivered.
	FromProc int
	// Broadcast reports whether the delivered message carries the broadcast
	// payload (the sender held the message when transmitting).
	Broadcast bool
	// Own reports whether the delivered message is the receiver's own.
	Own bool
}

// Process is one automaton of an algorithm. The engine calls Start exactly
// once when the process becomes active, then in every subsequent round first
// Decide and then Receive. Round numbers are global (the paper justifies a
// global round counter by having the source label messages with its local
// counter; see Section 5, footnote 1).
type Process interface {
	// Start activates the process at the given round. hasMessage is true
	// only for the source process, which holds the broadcast message before
	// round 1.
	Start(round int, hasMessage bool)
	// Decide reports whether the process transmits in this round.
	Decide(round int) bool
	// Receive delivers the round's reception outcome.
	Receive(round int, r Reception)
}

// Algorithm creates the processes of a broadcast algorithm.
type Algorithm interface {
	// Name returns a short identifier for reports.
	Name() string
	// NewProcess creates the process with identifier id (1..n) for an
	// n-node network. rng is the process's private randomness source;
	// deterministic algorithms must not use it.
	NewProcess(id, n int, rng *rand.Rand) Process
}

// View is the read-only information the engine exposes to the adversary when
// it makes a choice. Slices are owned by the engine and must not be mutated.
type View struct {
	// Round is the current round (1-based).
	Round int
	// Dual is the network.
	Dual *graph.Dual
	// ProcOf maps node -> process identifier.
	ProcOf []int
	// HasMessage reports, per node, whether it held the broadcast message at
	// the start of the round.
	HasMessage []bool
	// Active reports, per node, whether the process is active.
	Active []bool
	// Sent reports, per node, whether it transmits this round.
	Sent []bool
	// Rng is the adversary's private randomness source, seeded from
	// Config.Seed for reproducibility.
	Rng *rand.Rand
}

// NoDelivery is returned by Adversary.Resolve to indicate silence under CR4.
const NoDelivery graph.NodeID = -1

// Adversary controls the three nondeterministic choices of the model: the
// process-to-node assignment, which unreliable edges deliver each round, and
// CR4 collision resolution.
type Adversary interface {
	// Name returns a short identifier for reports.
	Name() string
	// AssignProcs returns the proc mapping as a slice procOf with
	// procOf[node] = process id; it must be a permutation of 1..n.
	AssignProcs(d *graph.Dual, rng *rand.Rand) ([]int, error)
	// Deliver returns, for each sending node, the subset of its unreliable
	// out-neighbours its message reaches this round. Nodes absent from the
	// map get no unreliable deliveries. Every returned neighbour must be an
	// unreliable out-neighbour of the sender.
	//
	// Deliver is the compatibility entry point; the engine calls it only for
	// adversaries that do not implement BufferedDeliverer, and applies the
	// returned map in deterministic sender order.
	Deliver(v *View, senders []graph.NodeID) map[graph.NodeID][]graph.NodeID
	// Resolve picks the CR4 outcome for a non-sending node reached by two or
	// more messages: NoDelivery for ⊥ or one of the reaching sender nodes.
	Resolve(v *View, node graph.NodeID, reaching []graph.NodeID) graph.NodeID
}

// BufferedDeliverer is the allocation-free delivery fast path: instead of
// returning a freshly allocated map every round, the adversary pushes each
// unreliable delivery into the engine-owned DeliverySink. Run prefers this
// interface when an adversary implements it; every built-in adversary does
// except Benign, which stays map-only on purpose (it delivers nothing, so
// the shim is already free, and it is the adversary most commonly embedded
// by wrappers that override Deliver). Third-party adversaries that only
// implement Adversary keep working through a shim around Deliver.
//
// Caveat for wrappers: embedding a built-in adversary inherits its
// DeliverInto, so overriding Deliver alone will not change the deliveries —
// override DeliverInto as well (or build on a plain Adversary).
type BufferedDeliverer interface {
	// DeliverInto records this round's unreliable deliveries via sink.Add.
	// The same validity rules as Deliver apply: only senders may deliver,
	// and only along edges of G' \ G.
	DeliverInto(v *View, senders []graph.NodeID, sink *DeliverySink)
}

// DeliverySink collects one round's unreliable deliveries into the run's
// preallocated reachability buffers. It validates every delivery exactly
// like the map path and latches the first error.
type DeliverySink struct {
	d            *graph.Dual
	sent         []bool
	buf          *runBuffers
	err          error
	scratchInts  []int
	scratchNodes []graph.NodeID
}

// Add records that sender s's message reaches v along the unreliable edge
// (s, v) this round. Invalid deliveries (s did not send, or (s, v) is not an
// edge of G' \ G) turn the run into an ErrBadDelivery failure. Membership is
// validated in O(log d) against the dual's unreliable fringe index.
func (ds *DeliverySink) Add(s, v graph.NodeID) {
	if ds.err != nil {
		return
	}
	if !ds.sent[s] {
		ds.err = fmt.Errorf("%w: node %d did not send", ErrBadDelivery, s)
		return
	}
	if !ds.d.HasUnreliableEdge(s, v) {
		ds.err = fmt.Errorf("%w: (%d,%d)", ErrBadDelivery, s, v)
		return
	}
	ds.buf.addReaching(v, s)
}

// AddEdgeID records a delivery along the unreliable arc with the given
// dense edge id (see graph.Dual.UnreliableEdges). It is the fastest sink
// entry point: the arc is resolved by direct index, so the only check left
// is that its source actually transmitted this round.
func (ds *DeliverySink) AddEdgeID(id graph.EdgeID) {
	if ds.err != nil {
		return
	}
	if id < 0 || int(id) >= ds.d.NumUnreliable() {
		ds.err = fmt.Errorf("%w: edge id %d outside [0,%d)", ErrBadDelivery, id, ds.d.NumUnreliable())
		return
	}
	s, v := ds.d.UnreliableEdge(id)
	if !ds.sent[s] {
		ds.err = fmt.Errorf("%w: node %d did not send", ErrBadDelivery, s)
		return
	}
	ds.buf.addReaching(v, s)
}

// Scratch returns two zeroed n-length scratch slices that an adversary may
// use freely within a single DeliverInto call; their contents do not survive
// the call.
func (ds *DeliverySink) Scratch() ([]int, []graph.NodeID) {
	for i := range ds.scratchInts {
		ds.scratchInts[i] = 0
		ds.scratchNodes[i] = 0
	}
	return ds.scratchInts, ds.scratchNodes
}

// addFromMap is the compatibility shim for map-based Deliver
// implementations. Map iteration order is randomized in Go, so it validates
// the keys first and then applies deliveries in deterministic sender order —
// the schedule of a run must never depend on map iteration.
func (ds *DeliverySink) addFromMap(m map[graph.NodeID][]graph.NodeID, senders []graph.NodeID) {
	if len(m) == 0 {
		return
	}
	// Report the lowest offending node id so the error, too, is independent
	// of map iteration order.
	bad := graph.NodeID(-1)
	for s := range m {
		if !ds.sent[s] && (bad < 0 || s < bad) {
			bad = s
		}
	}
	if bad >= 0 {
		ds.err = fmt.Errorf("%w: node %d did not send", ErrBadDelivery, bad)
		return
	}
	for _, s := range senders {
		for _, v := range m[s] {
			ds.Add(s, v)
		}
	}
}

// runBuffers is the preallocated per-run state of the delivery hot path: the
// per-node reaching lists, a []uint64 bitset marking the nodes reached this
// round, and the reusable sender/holder slices. All of it is allocated once
// per run; rounds only reset the entries they actually touched, so the
// steady-state round loop performs no heap allocation.
type runBuffers struct {
	reaching   [][]graph.NodeID
	touchedBit []uint64
	touched    []graph.NodeID
	senders    []graph.NodeID
	newHolders []graph.NodeID
	// sizedFor is the G' core the rows were last sized against; epochs that
	// share it (fade never changes G') skip the re-scan entirely.
	sizedFor *graph.Graph
}

// reachingBound returns the per-node row-sizing model of the delivery
// buffers: a node can be reached by at most its G' in-neighbours plus its
// own transmission, so row v must hold reachingBound(d)[v]+1 senders. Both
// newRunBuffers and ensureCapacity size against exactly this function, so
// the initial carve and the epoch-swap overflow check can never disagree.
func reachingBound(d *graph.Dual) []int32 {
	n := d.N()
	gp := d.GPrime()
	indeg := make([]int32, n)
	for u := 0; u < n; u++ {
		for _, v := range gp.Out(graph.NodeID(u)) {
			indeg[v]++
		}
	}
	return indeg
}

// newRunBuffers sizes the per-node reaching lists to their model upper
// bound (reachingBound) and carves them out of one flat backing array
// (CSR-style), so the round loop never grows a row no matter the traffic
// pattern. (A misbehaving adversary delivering the same arc twice in a
// round merely falls back to an ordinary slice grow.)
func newRunBuffers(d *graph.Dual) *runBuffers {
	n := d.N()
	indeg := reachingBound(d)
	total := 0
	for _, c := range indeg {
		total += int(c) + 1
	}
	backing := make([]graph.NodeID, total)
	reaching := make([][]graph.NodeID, n)
	off := 0
	for v := 0; v < n; v++ {
		end := off + int(indeg[v]) + 1
		reaching[v] = backing[off:off:end]
		off = end
	}
	return &runBuffers{
		reaching:   reaching,
		touchedBit: make([]uint64, (n+63)/64),
		touched:    make([]graph.NodeID, 0, n),
		senders:    make([]graph.NodeID, 0, n),
		newHolders: make([]graph.NodeID, 0, n),
		sizedFor:   d.GPrime(),
	}
}

// ensureCapacity adapts the buffers to a new epoch's network at an epoch
// swap. Reaching rows are carved from one flat backing array sized by G'
// in-degree+1; when every row of the new network fits in its existing
// capacity the buffers are kept as they are (the caller resets them at the
// top of the round), and any row that would overflow rebuilds the whole
// buffer set against the new network — the lazy resize that guarantees
// reaching rows never alias across epochs while epochs with shrinking or
// stable in-degrees pay nothing.
func (b *runBuffers) ensureCapacity(d *graph.Dual) {
	if d.GPrime() == b.sizedFor {
		// Same frozen G' core, same in-degree bound: nothing to scan.
		return
	}
	indeg := reachingBound(d)
	for v := 0; v < d.N(); v++ {
		if int(indeg[v])+1 > cap(b.reaching[v]) {
			*b = *newRunBuffers(d)
			return
		}
	}
	b.sizedFor = d.GPrime()
}

// reset clears exactly the state the previous round touched.
func (b *runBuffers) reset() {
	for _, v := range b.touched {
		b.touchedBit[v>>6] &^= 1 << (uint64(v) & 63)
		b.reaching[v] = b.reaching[v][:0]
	}
	b.touched = b.touched[:0]
	b.senders = b.senders[:0]
	b.newHolders = b.newHolders[:0]
}

func (b *runBuffers) reached(v graph.NodeID) bool {
	return b.touchedBit[v>>6]&(1<<(uint64(v)&63)) != 0
}

// addReaching appends sender s to v's reaching list, registering v in the
// touched set on first contact so reset stays proportional to the round's
// actual traffic.
func (b *runBuffers) addReaching(v, s graph.NodeID) {
	w, bit := v>>6, uint64(1)<<(uint64(v)&63)
	if b.touchedBit[w]&bit == 0 {
		b.touchedBit[w] |= bit
		b.touched = append(b.touched, v)
	}
	b.reaching[v] = append(b.reaching[v], s)
}

// Config parameterizes a run.
type Config struct {
	// Rule is the collision rule (default CR4, the weakest).
	Rule CollisionRule
	// Start is the start rule (default AsyncStart, the weakest).
	Start StartRule
	// MaxRounds caps the execution length; 0 means the default cap.
	MaxRounds int
	// Seed makes the run reproducible.
	Seed int64
	// RecordSenders stores the per-round sender process ids in the result.
	RecordSenders bool
	// RunToMaxRounds keeps executing after completion (used by lower-bound
	// drivers that inspect transcripts); by default the run stops when all
	// processes hold the message.
	RunToMaxRounds bool
}

func (c Config) withDefaults(n int) Config {
	if c.Rule == 0 {
		c.Rule = CR4
	}
	if c.Start == 0 {
		c.Start = AsyncStart
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = defaultMaxRounds(n)
	}
	return c
}

// defaultMaxRounds is a generous cap well above the paper's O(n^{3/2}√log n)
// worst case for the sizes we simulate.
func defaultMaxRounds(n int) int {
	return 200*n*n + 10000
}

// Result reports the outcome of a run.
type Result struct {
	// Completed reports whether every process received the message.
	Completed bool
	// Rounds is the round in which the last process first received the
	// message (0 when n == 1 holders initially); if not completed it is the
	// number of rounds executed.
	Rounds int
	// FirstReceive maps node -> round of first receipt of the broadcast
	// message (0 for the source, -1 if never).
	FirstReceive []int
	// Transmissions counts all transmissions across the execution.
	Transmissions int
	// SendersByRound lists the sending process ids per round (1-based round
	// r at index r-1) when Config.RecordSenders is set.
	SendersByRound [][]int
	// ProcOf is the node -> process id assignment used.
	ProcOf []int
}

// Errors returned by Run.
var (
	ErrBadAssignment = errors.New("adversary returned an invalid proc assignment")
	ErrBadDelivery   = errors.New("adversary delivered along a non-unreliable edge")
	ErrBadResolve    = errors.New("adversary resolved CR4 to a non-reaching sender")
	ErrBadEpoch      = errors.New("schedule produced an epoch with a different node count or source")
)

// Run executes alg against adv on the fixed network d under cfg and returns
// the execution summary. It is exactly RunDynamic over a static schedule.
func Run(d *graph.Dual, alg Algorithm, adv Adversary, cfg Config) (*Result, error) {
	return RunDynamic(graph.Static(d), alg, adv, cfg)
}

// RunDynamic executes alg against adv on the time-varying network produced
// by sched. The run starts on epoch 0; every EpochLength rounds the current
// Dual is swapped for the next epoch — algorithm and adversary state, the
// proc assignment (made once against epoch 0), and all per-node result
// tracking survive the swap, while the adversary's EdgeID universe is the
// current epoch's (View.Dual always points at it). Epoch materialization
// derives all randomness from (epoch, cfg.Seed) via the schedule's purity
// contract, so a run is reproducible from cfg.Seed alone, and the engine's
// per-trial seed derivation extends bit-identical-at-any-worker-count
// determinism to dynamic sweeps. A static schedule takes exactly the code
// path Run always took.
func RunDynamic(sched graph.Schedule, alg Algorithm, adv Adversary, cfg Config) (*Result, error) {
	d, err := sched.Epoch(0, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("schedule epoch 0: %w", err)
	}
	n := d.N()
	cfg = cfg.withDefaults(n)
	baseRng := rand.New(rand.NewSource(cfg.Seed))
	assignRng := rand.New(rand.NewSource(baseRng.Int63()))
	advRng := rand.New(rand.NewSource(baseRng.Int63()))
	procSeeds := make([]int64, n+1)
	for pid := 1; pid <= n; pid++ {
		procSeeds[pid] = baseRng.Int63()
	}

	procOf, err := adv.AssignProcs(d, assignRng)
	if err != nil {
		return nil, fmt.Errorf("assign procs: %w", err)
	}
	if err := validateAssignment(procOf, n); err != nil {
		return nil, err
	}

	procs := make([]Process, n)
	for node := 0; node < n; node++ {
		pid := procOf[node]
		procs[node] = alg.NewProcess(pid, n, rand.New(rand.NewSource(procSeeds[pid])))
	}

	src := d.Source()
	hasMsg := make([]bool, n)
	active := make([]bool, n)
	sent := make([]bool, n)
	firstRecv := make([]int, n)
	for i := range firstRecv {
		firstRecv[i] = -1
	}
	hasMsg[src] = true
	firstRecv[src] = 0

	procs[src].Start(1, true)
	active[src] = true
	if cfg.Start == SyncStart {
		for node := 0; node < n; node++ {
			if graph.NodeID(node) != src {
				procs[node].Start(1, false)
				active[node] = true
			}
		}
	}

	res := &Result{
		FirstReceive: firstRecv,
		ProcOf:       procOf,
	}
	view := &View{
		Dual:       d,
		ProcOf:     procOf,
		HasMessage: hasMsg,
		Active:     active,
		Sent:       sent,
		Rng:        advRng,
	}
	buf := newRunBuffers(d)
	sink := &DeliverySink{
		d:            d,
		sent:         sent,
		buf:          buf,
		scratchInts:  make([]int, n),
		scratchNodes: make([]graph.NodeID, n),
	}
	// Resolve the fast path once: the type assertion must not sit in the
	// round loop.
	buffered, _ := adv.(BufferedDeliverer)

	epochLen := sched.EpochLength()
	holders := 1
	for round := 1; round <= cfg.MaxRounds; round++ {
		view.Round = round
		buf.reset()
		if epochLen > 0 && round > 1 && (round-1)%epochLen == 0 {
			// Epoch boundary: swap in the next frozen network. The swap
			// happens after reset, so the buffers carry no round state; rows
			// are kept when the new epoch fits and rebuilt when it does not.
			e := (round - 1) / epochLen
			nd, err := sched.Epoch(e, cfg.Seed)
			if err != nil {
				return nil, fmt.Errorf("schedule epoch %d: %w", e, err)
			}
			if nd.N() != n {
				return nil, fmt.Errorf("%w: epoch %d has %d nodes, run started with %d",
					ErrBadEpoch, e, nd.N(), n)
			}
			if nd.Source() != src {
				return nil, fmt.Errorf("%w: epoch %d moved the source to %d, run started at %d",
					ErrBadEpoch, e, nd.Source(), src)
			}
			if nd != d {
				// Identical-pointer epochs (no-op churn/fade draws, cached
				// epochs, the static wrap) skip the swap entirely, keeping
				// the round loop allocation-free.
				d = nd
				view.Dual = d
				sink.d = d
				buf.ensureCapacity(d)
			}
		}
		for i := range sent {
			sent[i] = false
		}
		for node := 0; node < n; node++ {
			if active[node] && procs[node].Decide(round) {
				sent[node] = true
				buf.senders = append(buf.senders, graph.NodeID(node))
			}
		}
		senders := buf.senders
		res.Transmissions += len(senders)
		if cfg.RecordSenders {
			pids := make([]int, len(senders))
			for i, s := range senders {
				pids[i] = procOf[s]
			}
			res.SendersByRound = append(res.SendersByRound, pids)
		}

		// Reliable reachability pass: a sender's message reaches itself and
		// every reliable out-neighbour unconditionally.
		for _, s := range senders {
			buf.addReaching(s, s)
			for _, v := range d.ReliableOut(s) {
				buf.addReaching(v, s)
			}
		}
		// Unreliable deliveries: adversary's choice, validated by the sink.
		if len(senders) > 0 {
			sink.err = nil
			if buffered != nil {
				buffered.DeliverInto(view, senders, sink)
			} else {
				sink.addFromMap(adv.Deliver(view, senders), senders)
			}
			if sink.err != nil {
				return nil, sink.err
			}
		}

		// senderHadMsg is evaluated against the start-of-round holder set;
		// hasMsg is only updated after all receptions are computed.
		for node := 0; node < n; node++ {
			if !active[node] && !buf.reached(graph.NodeID(node)) {
				// An inactive node that nothing reached hears silence and
				// cannot wake: skip it entirely.
				continue
			}
			rec, err := computeReception(cfg.Rule, adv, view, graph.NodeID(node), sent[node], buf.reaching[node], procOf, hasMsg)
			if err != nil {
				return nil, err
			}
			if rec.Kind == Delivered && rec.Broadcast && !rec.Own && !hasMsg[node] {
				buf.newHolders = append(buf.newHolders, graph.NodeID(node))
			}
			switch {
			case active[node]:
				procs[node].Receive(round, rec)
			case rec.Kind == Delivered && cfg.Start == AsyncStart:
				// Asynchronous activation: the process wakes on its first
				// received message and observes that reception.
				procs[node].Start(round, false)
				active[node] = true
				procs[node].Receive(round, rec)
			}
		}
		for _, node := range buf.newHolders {
			hasMsg[node] = true
			firstRecv[node] = round
			holders++
		}

		res.Rounds = round
		if holders == n && !cfg.RunToMaxRounds {
			break
		}
	}

	res.Completed = holders == n
	if res.Completed && !cfg.RunToMaxRounds {
		// Rounds is the completion round: the max first-receive round.
		maxRecv := 0
		for _, r := range firstRecv {
			if r > maxRecv {
				maxRecv = r
			}
		}
		res.Rounds = maxRecv
	}
	return res, nil
}

func computeReception(
	rule CollisionRule,
	adv Adversary,
	view *View,
	node graph.NodeID,
	isSender bool,
	reaching []graph.NodeID,
	procOf []int,
	hasMsg []bool,
) (Reception, error) {
	deliverFrom := func(s graph.NodeID) Reception {
		return Reception{
			Kind:      Delivered,
			From:      s,
			FromProc:  procOf[s],
			Broadcast: hasMsg[s],
			Own:       s == node,
		}
	}
	own := func() Reception {
		return Reception{
			Kind:      Delivered,
			From:      node,
			FromProc:  procOf[node],
			Broadcast: hasMsg[node],
			Own:       true,
		}
	}

	switch rule {
	case CR1:
		switch len(reaching) {
		case 0:
			return Reception{Kind: Silence}, nil
		case 1:
			return deliverFrom(reaching[0]), nil
		default:
			return Reception{Kind: Collision}, nil
		}
	case CR2, CR3, CR4:
		if isSender {
			return own(), nil
		}
		switch len(reaching) {
		case 0:
			return Reception{Kind: Silence}, nil
		case 1:
			return deliverFrom(reaching[0]), nil
		}
		switch rule {
		case CR2:
			return Reception{Kind: Collision}, nil
		case CR3:
			return Reception{Kind: Silence}, nil
		default: // CR4
			choice := adv.Resolve(view, node, reaching)
			if choice == NoDelivery {
				return Reception{Kind: Silence}, nil
			}
			for _, s := range reaching {
				if s == choice {
					return deliverFrom(s), nil
				}
			}
			return Reception{}, fmt.Errorf("%w: node %d chose %d", ErrBadResolve, node, choice)
		}
	}
	return Reception{}, fmt.Errorf("unknown collision rule %v", rule)
}

func validateAssignment(procOf []int, n int) error {
	if len(procOf) != n {
		return fmt.Errorf("%w: length %d, want %d", ErrBadAssignment, len(procOf), n)
	}
	seen := make([]bool, n+1)
	for node, pid := range procOf {
		if pid < 1 || pid > n || seen[pid] {
			return fmt.Errorf("%w: node %d has pid %d", ErrBadAssignment, node, pid)
		}
		seen[pid] = true
	}
	return nil
}

package sim

import (
	"encoding/json"
	"fmt"
)

// JSON encodings for the two rule enums, so declarative scenario files read
// "CR4" and "async" instead of bare integers. Unmarshaling also accepts the
// numeric forms for hand-written files.

// MarshalJSON encodes the rule as its name ("CR1".."CR4").
func (c CollisionRule) MarshalJSON() ([]byte, error) {
	if c < CR1 || c > CR4 {
		return nil, fmt.Errorf("cannot marshal invalid collision rule %d", int(c))
	}
	return json.Marshal(c.String())
}

// UnmarshalJSON decodes "CR3" or the bare number 3.
func (c *CollisionRule) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		for r := CR1; r <= CR4; r++ {
			if r.String() == s {
				*c = r
				return nil
			}
		}
		return fmt.Errorf("unknown collision rule %q (want CR1..CR4)", s)
	}
	var n int
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("collision rule must be a string or number, got %s", b)
	}
	if n < int(CR1) || n > int(CR4) {
		return fmt.Errorf("collision rule %d outside 1..4", n)
	}
	*c = CollisionRule(n)
	return nil
}

// MarshalJSON encodes the start rule as "sync" or "async".
func (s StartRule) MarshalJSON() ([]byte, error) {
	if s < SyncStart || s > AsyncStart {
		return nil, fmt.Errorf("cannot marshal invalid start rule %d", int(s))
	}
	return json.Marshal(s.String())
}

// UnmarshalJSON decodes "sync"/"async" or the bare numbers 1/2.
func (s *StartRule) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err == nil {
		switch name {
		case "sync":
			*s = SyncStart
		case "async":
			*s = AsyncStart
		default:
			return fmt.Errorf("unknown start rule %q (want sync or async)", name)
		}
		return nil
	}
	var n int
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("start rule must be a string or number, got %s", b)
	}
	if n < int(SyncStart) || n > int(AsyncStart) {
		return fmt.Errorf("start rule %d outside 1..2", n)
	}
	*s = StartRule(n)
	return nil
}

package sim

import (
	"testing"

	"dualgraph/internal/graph"
)

// TestEnsureCapacityNoAliasingAcrossSwaps is the epoch-boundary buffer
// invariant: after swapping to an epoch with larger G' in-degrees the
// reaching rows must be rebuilt (an old row would overflow its slot in the
// flat backing array), after which filling every row to its new bound keeps
// all rows disjoint — no reaching-set aliasing. Swapping to a smaller epoch
// must keep the existing buffers (the lazy half of the resize).
func TestEnsureCapacityNoAliasingAcrossSwaps(t *testing.T) {
	const n = 9
	small, err := graph.Line(n)
	if err != nil {
		t.Fatal(err)
	}
	big, err := graph.Complete(n)
	if err != nil {
		t.Fatal(err)
	}

	buf := newRunBuffers(small)
	smallCaps := make([]int, n)
	for v := range smallCaps {
		smallCaps[v] = cap(buf.reaching[v])
		if smallCaps[v] >= n {
			t.Fatalf("line row %d capacity %d already fits the complete graph; test setup broken", v, smallCaps[v])
		}
	}
	// Dirty the buffers like a round would, then reset (the loop resets
	// before any swap).
	buf.addReaching(0, 1)
	buf.addReaching(2, 1)
	buf.reset()

	// Grow swap: line -> complete. Every row must now hold in-degree+1 = n
	// senders.
	buf.ensureCapacity(big)
	for v := 0; v < n; v++ {
		if got := cap(buf.reaching[v]); got < n {
			t.Fatalf("after grow swap, row %d capacity %d < %d", v, got, n)
		}
	}
	// Fill every row to its model bound and verify no row sees another's
	// writes.
	for v := 0; v < n; v++ {
		for s := 0; s < n; s++ {
			buf.addReaching(graph.NodeID(v), graph.NodeID(v*100+s)) // sentinel value unique per (row, slot)
		}
	}
	for v := 0; v < n; v++ {
		row := buf.reaching[v]
		if len(row) != n {
			t.Fatalf("row %d has %d entries, want %d", v, len(row), n)
		}
		for s, got := range row {
			if want := graph.NodeID(v*100 + s); got != want {
				t.Fatalf("row %d slot %d = %d, want %d: rows alias after swap", v, s, got, want)
			}
		}
	}
	buf.reset()

	// Shrink swap: complete -> line. Capacities suffice, so the buffers are
	// kept as-is (lazy: no rebuild).
	bigCaps := make([]int, n)
	for v := range bigCaps {
		bigCaps[v] = cap(buf.reaching[v])
	}
	buf.ensureCapacity(small)
	for v := 0; v < n; v++ {
		if cap(buf.reaching[v]) != bigCaps[v] {
			t.Fatalf("shrink swap rebuilt row %d (cap %d -> %d); resize should be lazy",
				v, bigCaps[v], cap(buf.reaching[v]))
		}
	}
	if buf.sizedFor != small.GPrime() {
		t.Fatal("keep path did not record the new G' core")
	}

	// Shared-G'-core fast path (fade epochs): a dual aliasing the same
	// frozen G' skips the scan — observable as sizedFor staying put even
	// though the Dual differs.
	faded, err := graph.NewDualGraphs(small.G(), small.GPrime(), small.Source())
	if err != nil {
		t.Fatal(err)
	}
	buf.ensureCapacity(faded)
	if buf.sizedFor != small.GPrime() {
		t.Fatal("shared-core fast path re-sized the buffers")
	}
}

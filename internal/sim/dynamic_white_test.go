package sim

import (
	"testing"

	"dualgraph/internal/graph"
)

// TestEnsureCapacityNoAliasingAcrossSwaps is the epoch-boundary buffer
// invariant: after swapping to an epoch with larger G' in-degrees the
// unreliable-delivery rows must be rebuilt (an old row would overflow its
// slot in the flat backing array), after which filling every row to its new
// bound keeps all rows disjoint — no delivery-list aliasing. Swapping to a
// smaller epoch must keep the existing buffers (the lazy half of the resize).
func TestEnsureCapacityNoAliasingAcrossSwaps(t *testing.T) {
	const n = 9
	small, err := graph.Line(n)
	if err != nil {
		t.Fatal(err)
	}
	big, err := graph.Complete(n)
	if err != nil {
		t.Fatal(err)
	}

	buf := newRunBuffers(small)
	wasDense := buf.dense
	for v := 0; v < n; v++ {
		if cap(buf.unrel[v]) >= n-1 {
			t.Fatalf("line row %d capacity %d already fits the complete graph; test setup broken", v, cap(buf.unrel[v]))
		}
	}
	// Dirty the buffers like a round would, then clear (the loop clears
	// before any swap).
	sent := make([]bool, n)
	buf.addUnrel(0, 1)
	buf.addUnrel(2, 1)
	buf.clearRound(sent)

	// Grow swap: line -> complete. Every row must now hold in-degree = n-1
	// unreliable deliveries.
	buf.ensureCapacity(big)
	if buf.dense != wasDense {
		t.Fatal("rebuild changed the per-run delivery mode")
	}
	for v := 0; v < n; v++ {
		if got := cap(buf.unrel[v]); got < n-1 {
			t.Fatalf("after grow swap, row %d capacity %d < %d", v, got, n-1)
		}
	}
	// Fill every row to its model bound and verify no row sees another's
	// writes.
	for v := 0; v < n; v++ {
		for s := 0; s < n-1; s++ {
			buf.addUnrel(graph.NodeID(v), graph.NodeID(v*100+s)) // sentinel unique per (row, slot)
		}
	}
	for v := 0; v < n; v++ {
		row := buf.unrel[v]
		if len(row) != n-1 {
			t.Fatalf("row %d has %d entries, want %d", v, len(row), n-1)
		}
		for s, got := range row {
			if want := graph.NodeID(v*100 + s); got != want {
				t.Fatalf("row %d slot %d = %d, want %d: rows alias after swap", v, s, got, want)
			}
		}
	}
	buf.clearRound(sent)

	// Shrink swap: complete -> line. Capacities suffice, so the buffers are
	// kept as-is (lazy: no rebuild).
	bigCaps := make([]int, n)
	for v := range bigCaps {
		bigCaps[v] = cap(buf.unrel[v])
	}
	buf.ensureCapacity(small)
	for v := 0; v < n; v++ {
		if cap(buf.unrel[v]) != bigCaps[v] {
			t.Fatalf("shrink swap rebuilt row %d (cap %d -> %d); resize should be lazy",
				v, bigCaps[v], cap(buf.unrel[v]))
		}
	}
	if buf.sizedFor != small.GPrime() {
		t.Fatal("keep path did not record the new G' core")
	}

	// Shared-G'-core fast path (fade epochs): a dual aliasing the same
	// frozen G' skips the scan — observable as sizedFor staying put even
	// though the Dual differs.
	faded, err := graph.NewDualGraphs(small.G(), small.GPrime(), small.Source())
	if err != nil {
		t.Fatal(err)
	}
	buf.ensureCapacity(faded)
	if buf.sizedFor != small.GPrime() {
		t.Fatal("shared-core fast path re-sized the buffers")
	}
}

// sparseFixture returns a dual large and thin enough to take the sparse
// delivery path.
func sparseFixture(t *testing.T) *graph.Dual {
	t.Helper()
	d, err := graph.Line(80)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDeliveryModeChoice pins the per-run mode decision: small dense
// networks go word-parallel, large or thin ones stay per-edge.
func TestDeliveryModeChoice(t *testing.T) {
	dense, err := graph.CliqueBridge(65)
	if err != nil {
		t.Fatal(err)
	}
	if b := newRunBuffers(dense); !b.dense {
		t.Error("clique-bridge(65) should use the dense mask mode")
	}
	if b := newRunBuffers(sparseFixture(t)); b.dense {
		t.Error("line(80) should use the sparse bitset mode")
	}
}

// TestReachBitsetsCountClasses exercises the sparse-mode count-class
// transitions that replaced per-node sender lists: one delivery makes a node
// reached with a recoverable single sender, a second collides it, and
// clearRound returns the bitsets (and only the touched words) to zero.
func TestReachBitsetsCountClasses(t *testing.T) {
	d := sparseFixture(t)
	buf := newRunBuffers(d)
	sent := make([]bool, d.N())

	const v, s1, s2 = 70, 3, 5 // v in the second word: both words must reset
	buf.addReach(v, s1)
	if !buf.reached(v) || buf.collided(v) {
		t.Fatal("one delivery: want reached, not collided")
	}
	if got := buf.singleReacher(v); got != s1 {
		t.Fatalf("singleReacher = %d, want %d", got, s1)
	}
	buf.addReach(v, s2)
	if !buf.reached(v) || !buf.collided(v) {
		t.Fatal("two deliveries: want reached and collided")
	}
	buf.addUnrel(9, s1)
	if !buf.reached(9) || buf.collided(9) {
		t.Fatal("one unreliable delivery: want reached, not collided")
	}
	if got := buf.singleReacher(9); got != s1 {
		t.Fatalf("unreliable singleReacher = %d, want %d", got, s1)
	}
	// A duplicate unreliable delivery along the same arc is a collision (the
	// legacy list was [s, s], length two).
	buf.addUnrel(9, s1)
	if !buf.collided(9) {
		t.Fatal("duplicate unreliable delivery must collide")
	}

	buf.clearRound(sent)
	for w, x := range buf.reach1 {
		if x != 0 || buf.reach2[w] != 0 {
			t.Fatalf("word %d not cleared: reach1=%x reach2=%x", w, x, buf.reach2[w])
		}
	}
	if len(buf.touchedW) != 0 || len(buf.unrelTouched) != 0 {
		t.Fatal("touched lists not truncated")
	}
	if len(buf.unrel[9]) != 0 {
		t.Fatal("unrel row not truncated")
	}
}

// TestClearRoundUnmarksOnlySenders pins the O(senders) sent-clear: clearRound
// must unset exactly the previous round's sender flags (an O(n) wipe per
// round is what it replaced) and truncate the sender list.
func TestClearRoundUnmarksOnlySenders(t *testing.T) {
	d := sparseFixture(t)
	n := d.N()
	buf := newRunBuffers(d)
	sent := make([]bool, n)
	for _, s := range []graph.NodeID{2, 41, 77} {
		sent[s] = true
		buf.senders = append(buf.senders, s)
	}
	buf.clearRound(sent)
	for i, f := range sent {
		if f {
			t.Fatalf("sent[%d] still set after clearRound", i)
		}
	}
	if len(buf.senders) != 0 {
		t.Fatal("sender list not truncated")
	}
}

// TestMaterializeReachingOrder pins the lazy CR4 list order against the
// legacy per-edge append order in both modes: reliable senders ascending
// (the reliable pass visited senders in ascending node order), then
// unreliable deliveries in sink-add order.
func TestMaterializeReachingOrder(t *testing.T) {
	check := func(t *testing.T, d *graph.Dual, senders []graph.NodeID, target graph.NodeID) {
		t.Helper()
		buf := newRunBuffers(d)
		if !buf.dense {
			buf.ensureInRows(d.G())
		}
		sent := make([]bool, d.N())
		want := []graph.NodeID{}
		for _, s := range senders {
			sent[s] = true
			buf.senders = append(buf.senders, s)
			if buf.dense {
				buf.deliverDense(s)
			} else {
				buf.addReach(s, s)
				for _, v := range d.ReliableOut(s) {
					buf.addReach(v, s)
				}
			}
			if d.G().HasEdge(s, target) {
				want = append(want, s)
			}
		}
		// Two unreliable deliveries out of ascending-sender order: they must
		// come last, in add order.
		unrel := []graph.NodeID{}
		for _, s := range senders {
			if d.HasUnreliableEdge(s, target) {
				unrel = append(unrel, s)
			}
		}
		for i := len(unrel) - 1; i >= 0; i-- {
			buf.addUnrel(target, unrel[i])
			want = append(want, unrel[i])
		}
		got := buf.materializeReaching(target, sent)
		if len(got) != len(want) {
			t.Fatalf("materialized %v, want %v", got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("materialized %v, want %v", got, want)
			}
		}
	}

	dense, err := graph.CliqueBridge(17)
	if err != nil {
		t.Fatal(err)
	}
	// Target 3 is a non-sender inside the clique; senders reach it reliably.
	check(t, dense, []graph.NodeID{1, 4, 9}, 3)

	sparse := sparseFixture(t)
	// Line: node 10's reliable in-neighbours are 9 and 11.
	check(t, sparse, []graph.NodeID{9, 11}, 10)
}

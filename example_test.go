package dualgraph_test

import (
	"fmt"

	"dualgraph"
)

// ExampleNewScenario builds and runs one declarative cell: every component
// is addressed by registry name, validated once, and materialized
// deterministically from the seed. A deterministic algorithm on a classical
// line completes in exactly n-1 rounds.
func ExampleNewScenario() {
	s, err := dualgraph.NewScenario(
		dualgraph.WithTopology("line", nil),
		dualgraph.WithN(8),
		dualgraph.WithAlgorithm("round-robin", nil),
		dualgraph.WithAdversary("benign", nil),
		dualgraph.WithCollisionRule(dualgraph.CR3),
		dualgraph.WithStart(dualgraph.SyncStart),
		dualgraph.WithSeed(1),
	)
	if err != nil {
		panic(err)
	}
	res, err := s.Run()
	if err != nil {
		panic(err)
	}
	fmt.Println("completed:", res.Completed, "rounds:", res.Rounds)
	// Output:
	// completed: true rounds: 7
}

// ExampleRunStream aggregates a Monte Carlo sweep without retaining
// per-trial results: memory stays O(shards) at any trial count and the
// summary is bit-identical at any worker count.
func ExampleRunStream() {
	net, err := dualgraph.CliqueBridge(9)
	if err != nil {
		panic(err)
	}
	alg, err := dualgraph.NewHarmonicForN(9, 0.02)
	if err != nil {
		panic(err)
	}
	sum, err := dualgraph.RunStream(net, alg, dualgraph.GreedyCollider{},
		dualgraph.Config{Seed: 2}, 8, dualgraph.EngineConfig{}, dualgraph.StreamConfig{})
	if err != nil {
		panic(err)
	}
	p50, err := sum.Rounds.Quantile(0.5)
	if err != nil {
		panic(err)
	}
	fmt.Printf("completed: %d/%d p50-rounds: %.0f\n", sum.Completed, sum.Trials, p50)
	// Output:
	// completed: 8/8 p50-rounds: 148
}

// ExampleSweep runs a whole Cartesian grid as one declarative value; every
// cell summary equals that cell's standalone run, at any worker count.
func ExampleSweep() {
	base, err := dualgraph.NewScenario(
		dualgraph.WithTopology("line", nil),
		dualgraph.WithAdversary("benign", nil),
		dualgraph.WithCollisionRule(dualgraph.CR3),
		dualgraph.WithStart(dualgraph.SyncStart),
		dualgraph.WithSeed(1),
	)
	if err != nil {
		panic(err)
	}
	sweep := dualgraph.Sweep{
		Base:       base,
		Algorithms: []dualgraph.Choice{{Name: "round-robin"}},
		Ns:         []int{6, 12},
		Trials:     4,
	}
	grid, err := sweep.Run(dualgraph.EngineConfig{}, dualgraph.StreamConfig{})
	if err != nil {
		panic(err)
	}
	for _, cr := range grid.Cells {
		maxR, err := cr.Summary.Rounds.Max()
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s rounds=%.0f\n", cr.Cell.Label, maxR)
	}
	// Output:
	// alg=round-robin n=6 rounds=5
	// alg=round-robin n=12 rounds=11
}

// ExampleWithSchedule makes a scenario time-varying: the churn schedule
// crashes nodes every epoch (their non-backbone links vanish) and the
// network is rebuilt as a frozen core at each epoch boundary, while
// algorithm and adversary state survive. Trial seeds drive the epoch
// randomness, so dynamic sweeps stay reproducible at any worker count.
func ExampleWithSchedule() {
	s, err := dualgraph.NewScenario(
		dualgraph.WithTopology("geometric", nil),
		dualgraph.WithN(24),
		dualgraph.WithAlgorithm("harmonic", nil),
		dualgraph.WithAdversary("greedy", nil),
		dualgraph.WithSchedule("churn", dualgraph.Params{"p-down": 0.2, "epoch-len": 4}),
		dualgraph.WithSeed(3),
	)
	if err != nil {
		panic(err)
	}
	res, err := s.Run()
	if err != nil {
		panic(err)
	}
	fmt.Println("completed:", res.Completed)
	// Output:
	// completed: true
}

# Shared entry points for CI and humans. CI (.github/workflows/ci.yml) calls
# exactly these targets, so a green `make ci` locally means a green pipeline.

GO ?= go

.PHONY: all build vet fmt-check staticcheck test test-short race bench-smoke bench-json ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt -l lists unformatted files; fail if any.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Static analysis beyond go vet. CI installs the pinned staticcheck before
# calling this; locally the target degrades to a notice when the binary is
# absent (the build container deliberately has no network to install it).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@2025.1.1 to enable)"; \
	fi

test:
	$(GO) test ./...

# The -short lane skips the slow full-registry experiment test but still
# exercises the engine fan-out path.
test-short:
	$(GO) test -short ./...

# Race job scoped to the concurrent core: the trial engine and the simulator
# it drives. -short skips the single-threaded 100k-node stress sim, which the
# race instrumentation would slow ~10x without exercising any concurrency.
race:
	$(GO) test -race -short ./internal/engine/... ./internal/sim/...

# A fast benchmark pass: the engine speedup pair and the allocation-free
# round loop, a few iterations each.
bench-smoke:
	$(GO) test -run NONE -bench 'BenchmarkEngine|BenchmarkSimRoundLoop' -benchtime 3x .

# The perf-trajectory artifact: hot-path, reducer, grid, and graph-layer
# benchmarks parsed into BENCH_pr4.json (benchmark name -> ns/op, B/op,
# allocs/op, custom metrics). The 'BenchmarkEngine' pattern covers both the
# slice path (EngineSequential/Parallel) and the streaming reducer
# (EngineReduceSequential/Parallel); 'BenchmarkGridSweep' captures
# cross-cell parallel throughput of the declarative grid runner vs
# sequential cells. CI uploads the file so the trend is comparable across
# PRs.
bench-json:
	$(GO) test -run NONE -bench 'BenchmarkEngine|BenchmarkSimRoundLoop|BenchmarkGridSweep' -benchmem -benchtime 3x . > bench_raw.txt
	$(GO) test -run NONE -bench 'BenchmarkGraphConstruction|BenchmarkUnreliableMembership|BenchmarkGeometricBuild100k|BenchmarkPreferentialAttachmentBuild100k' -benchmem -benchtime 3x ./internal/graph/ >> bench_raw.txt
	$(GO) run ./cmd/benchjson < bench_raw.txt > BENCH_pr4.json
	@rm -f bench_raw.txt
	@echo "wrote BENCH_pr4.json"

ci: build vet fmt-check staticcheck test race

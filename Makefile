# Shared entry points for CI and humans. CI (.github/workflows/ci.yml) calls
# exactly these targets, so a green `make ci` locally means a green pipeline.

GO ?= go

.PHONY: all build vet fmt-check test test-short race bench-smoke ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt -l lists unformatted files; fail if any.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

# The -short lane skips the slow full-registry experiment test but still
# exercises the engine fan-out path.
test-short:
	$(GO) test -short ./...

# Race job scoped to the concurrent core: the trial engine and the simulator
# it drives.
race:
	$(GO) test -race ./internal/engine/... ./internal/sim/...

# A fast benchmark pass: the engine speedup pair and the allocation-free
# round loop, a few iterations each.
bench-smoke:
	$(GO) test -run NONE -bench 'BenchmarkEngine|BenchmarkSimRoundLoop' -benchtime 3x .

ci: build vet fmt-check test race

# Shared entry points for CI and humans. CI (.github/workflows/ci.yml) calls
# exactly these targets, so a green `make ci` locally means a green pipeline.

GO ?= go

.PHONY: all build vet fmt-check staticcheck test test-short race fuzz-smoke cover-check serve-smoke resume-smoke metrics-smoke bench-smoke bench-json bench-compare docs-registry docs-metrics docs-check ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt -l lists unformatted files; fail if any.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Static analysis beyond go vet. CI installs the pinned staticcheck before
# calling this; locally the target degrades to a notice when the binary is
# absent (the build container deliberately has no network to install it).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@2025.1.1 to enable)"; \
	fi

test:
	$(GO) test ./...

# The -short lane skips the slow full-registry experiment test but still
# exercises the engine fan-out path.
test-short:
	$(GO) test -short ./...

# Race job scoped to the concurrent core: the trial engine, the simulator it
# drives, the job service that multiplexes HTTP clients onto the engine, the
# observability layer (metrics registry scraped while instruments record;
# progress tracker fed from worker goroutines), and the adversary/exhaustive
# pair — the adaptive adversary is shared across concurrent trials and forks
# per run via sim.RunForker, which is exactly the kind of sharing the race
# detector should watch.
# -short skips the single-threaded 100k-node stress sim, which the race
# instrumentation would slow ~10x without exercising any concurrency, and
# shrinks the service's slow-job fixtures.
race:
	$(GO) test -race -short ./internal/engine/... ./internal/sim/... ./internal/service/... ./internal/metrics/... ./internal/progress/... ./internal/adversary/... ./internal/exhaustive/...

# Short-budget pass over every native fuzz target: the wire formats that
# cross trust boundaries (spec scenario/sweep JSON, the stats stream codec,
# checkpoint torn-tail recovery). A few seconds each is enough to replay the
# checked-in corpus and shake the shallow branches in CI; run `go test
# -fuzz=<target> -fuzztime=10m <pkg>` for a real hunt.
FUZZTIME ?= 5s
fuzz-smoke:
	$(GO) test -run NONE -fuzz FuzzScenarioUnmarshal -fuzztime $(FUZZTIME) ./internal/spec/
	$(GO) test -run NONE -fuzz FuzzSweepUnmarshal -fuzztime $(FUZZTIME) ./internal/spec/
	$(GO) test -run NONE -fuzz FuzzStreamUnmarshal -fuzztime $(FUZZTIME) ./internal/stats/
	$(GO) test -run NONE -fuzz FuzzDecode -fuzztime $(FUZZTIME) ./internal/checkpoint/
	$(GO) test -run NONE -fuzz FuzzRecover -fuzztime $(FUZZTIME) ./internal/checkpoint/

# Coverage floor gate: measure per-package statement coverage on the tier-1
# test suite and fail if any package drops below its checked-in floor
# (coverage_floors.txt). New packages without a floor are reported but do
# not fail; give them a line once their tests settle.
cover-check:
	$(GO) test -short -cover . ./internal/... | $(GO) run ./cmd/covercheck -floors coverage_floors.txt

# End-to-end smoke of the dgsimd daemon binary: build it, start it on a free
# port, submit a sweep and stream its results over HTTP, cancel a running
# job, then SIGTERM and assert a graceful drain with exit code 0.
serve-smoke:
	$(GO) test -run TestServeSmoke -count=1 -v ./cmd/dgsimd/

# Crash-recovery smoke over the real binaries: SIGKILL a checkpointing dgsim
# mid-grid and byte-diff the resumed output against an uninterrupted run at
# workers 1/2/8 (TestKillAndResumeByteIdentical), then drive a coordinator
# job with two real `dgsimd -worker` processes plus one orphaned claim and
# byte-diff the streamed results against the local engine (TestWorkerSmoke).
resume-smoke:
	$(GO) test -run 'TestKillAndResumeByteIdentical|TestResumeRejectsEditedSpec' -count=1 -v ./cmd/dgsim/
	$(GO) test -run TestWorkerSmoke -count=1 -v ./cmd/dgsimd/

# Observability smoke over the real dgsimd binary (started with -pprof): run
# a sweep to completion while scraping GET /metrics, validate the Prometheus
# exposition format by hand, assert the key engine/service series carry the
# job's own arithmetic, and check the healthz JSON body and pprof mount.
metrics-smoke:
	$(GO) test -run TestMetricsSmoke -count=1 -v ./cmd/dgsimd/

# A fast benchmark pass: the engine speedup pair and the allocation-free
# round loop, a few iterations each.
bench-smoke:
	$(GO) test -run NONE -bench 'BenchmarkEngine|BenchmarkSimRoundLoop' -benchtime 3x .

# The perf-trajectory artifact: hot-path, reducer, grid, graph-layer,
# dynamics, checkpoint, and observability benchmarks parsed into
# BENCH_pr9.json (benchmark name -> ns/op, B/op, allocs/op, custom metrics).
# The 'BenchmarkEngine' pattern covers both the slice path
# (EngineSequential/Parallel) and the streaming reducer
# (EngineReduceSequential/Parallel); 'BenchmarkSimRoundLoop'
# also matches the Static/Dynamic pair that brackets the hoisted round loop;
# 'BenchmarkGridSweep' captures cross-cell parallel throughput of the
# declarative grid runner vs sequential cells; 'BenchmarkEpochSwap' also
# matches the EpochSwapIncremental/pDown=* churn-scaling series;
# 'BenchmarkCheckpoint' is the fsync-per-record write + recover round trip
# behind -checkpoint/-resume; 'BenchmarkMetrics' is the
# instrumented-vs-uninstrumented round-loop pair that prices the PR 9
# observability layer; 'BenchmarkAdaptive' is the per-round planning cost of
# the adaptive best-response adversary, transposition-table cold and warm.
# CI uploads the file so the trend is comparable across PRs.
bench-json:
	$(GO) test -run NONE -bench 'BenchmarkEngine|BenchmarkSimRoundLoop|BenchmarkGridSweep|BenchmarkEpochSwap|BenchmarkDynamicSweep|BenchmarkCheckpoint|BenchmarkMetrics|BenchmarkAdaptive' -benchmem -benchtime 3x . > bench_raw.txt
	$(GO) test -run NONE -bench 'BenchmarkGraphConstruction|BenchmarkUnreliableMembership|BenchmarkGeometricBuild100k|BenchmarkPreferentialAttachmentBuild100k' -benchmem -benchtime 3x ./internal/graph/ >> bench_raw.txt
	$(GO) run ./cmd/benchjson < bench_raw.txt > BENCH_pr10.json
	@rm -f bench_raw.txt
	@echo "wrote BENCH_pr10.json"

# Regression gate over the trajectory artifact: compare the fresh
# BENCH_pr10.json against a baseline report (CI fetches the previous run's
# artifact into $(BENCH_BASELINE); locally point it at any saved report) and
# fail on a >10% ns/op regression in the gated round-loop, epoch-swap, and
# adaptive-planning benchmarks. Benchmarks absent from the baseline are
# informational "new", never failures. Skipped with a notice when no
# baseline exists (first run, artifact expired) — absence of a baseline must
# not mask absence of the gate, so the skip prints loudly.
BENCH_BASELINE ?= BENCH_baseline.json
bench-compare: bench-json
	@if [ -f "$(BENCH_BASELINE)" ]; then \
		$(GO) run ./cmd/benchcmp -old "$(BENCH_BASELINE)" -new BENCH_pr10.json; \
	else \
		echo "bench-compare: no baseline at $(BENCH_BASELINE); skipping regression gate"; \
	fi

# Regenerate the registry reference (docs/REGISTRY.md) from the code's own
# registry tables. Commit the result; docs-check fails CI on drift.
# (Generate into a temp file first: `> docs/REGISTRY.md` would truncate the
# tracked file before the generator even compiles.)
docs-registry:
	@mkdir -p docs
	$(GO) run ./cmd/regdocs > docs/.REGISTRY.md.tmp && mv docs/.REGISTRY.md.tmp docs/REGISTRY.md || { rm -f docs/.REGISTRY.md.tmp; exit 1; }
	@echo "wrote docs/REGISTRY.md"

# Regenerate the metric catalog (docs/METRICS.md) from the process-wide
# metrics registry (cmd/metricdocs underscore-imports every instrumented
# package so its registrations run). Commit the result; docs-check fails CI
# on drift.
docs-metrics:
	@mkdir -p docs
	$(GO) run ./cmd/metricdocs > docs/.METRICS.md.tmp && mv docs/.METRICS.md.tmp docs/METRICS.md || { rm -f docs/.METRICS.md.tmp; exit 1; }
	@echo "wrote docs/METRICS.md"

# Drift gate: the committed docs/REGISTRY.md and docs/METRICS.md must match
# what the code generates right now. The tracked-file check comes first
# because `git diff` exits 0 for untracked (or deleted-and-committed) paths,
# which would make the gate vacuous.
docs-check: docs-registry docs-metrics
	@for f in docs/REGISTRY.md docs/METRICS.md; do \
		git ls-files --error-unmatch $$f >/dev/null 2>&1 || \
			{ echo "$$f is not tracked; commit the generated file"; exit 1; }; \
		git diff --exit-code $$f || \
			{ echo "$$f drifted from the generator; commit the regenerated file"; exit 1; }; \
	done

ci: build vet fmt-check staticcheck docs-check test race fuzz-smoke cover-check serve-smoke resume-smoke metrics-smoke

// Package dualgraph is the public API of the dual-graph radio network
// library, a full reproduction of "Broadcasting in Unreliable Radio
// Networks" (Kuhn, Lynch, Newport, Oshman, Richa; 2010), built for
// large-scale Monte Carlo experimentation.
//
// A network is a pair (G, G') of graphs over the same nodes with E ⊆ E':
// G edges are reliable and always deliver, G' \ G edges are unreliable and a
// per-round adversary decides whether they deliver. The package provides:
//
//   - the synchronous round-based execution model with collision rules
//     CR1-CR4 and synchronous/asynchronous starts (Run, Config), with an
//     allocation-free steady-state round loop;
//   - a sharded, deterministic parallel trial engine (RunMany,
//     EngineConfig) that fans independent trials out over a
//     GOMAXPROCS-sized worker pool while guaranteeing bit-identical
//     results at any worker count;
//   - the paper's algorithms: deterministic Strong Select
//     (O(n^{3/2} √log n), Section 5) and randomized Harmonic Broadcast
//     (O(n log² n) w.h.p., Section 7), plus baselines (round robin, Decay,
//     uniform);
//   - adversaries from benign to adaptive worst-case, programmed against a
//     frozen CSR dual-graph core whose unreliable arcs carry dense EdgeIDs
//     (Network.UnreliableEdges) for O(log d) membership and bitset-coded
//     per-round delivery strategies;
//   - topology generators (clique+bridge, complete layered, grids with
//     gray-zone links, random, geometric and preferential-attachment duals,
//     ...) that scale to 100k+ nodes;
//   - executable lower bounds (Theorems 2, 4 and 12) and the
//     explicit-interference reduction (Lemma 1).
//
// Single run:
//
//	net, err := dualgraph.Geometric(64, 0.25, 0.6, rng)
//	alg, err := dualgraph.NewHarmonicForN(64, 0.01)
//	res, err := dualgraph.Run(net, alg, dualgraph.GreedyCollider{}, dualgraph.Config{Seed: 1})
//	fmt.Println(res.Rounds, res.Completed)
//
// Monte Carlo sweep over all CPUs — trial i's seed is a pure function of
// (Config.Seed, i), so the result slice is reproducible regardless of
// parallelism:
//
//	results, err := dualgraph.RunMany(net, alg, dualgraph.GreedyCollider{},
//		dualgraph.Config{Seed: 1}, 10000, dualgraph.EngineConfig{})
package dualgraph

import (
	"context"
	"math/rand"

	"dualgraph/internal/adversary"
	"dualgraph/internal/checkpoint"
	"dualgraph/internal/core"
	"dualgraph/internal/engine"
	"dualgraph/internal/exhaustive"
	"dualgraph/internal/graph"
	"dualgraph/internal/interference"
	"dualgraph/internal/linkest"
	"dualgraph/internal/lowerbound"
	"dualgraph/internal/registry"
	"dualgraph/internal/repeat"
	"dualgraph/internal/schedule"
	"dualgraph/internal/sim"
	"dualgraph/internal/spec"
	"dualgraph/internal/ssf"
	"dualgraph/internal/stats"
)

// Model types.
type (
	// NodeID identifies a node (0..n-1).
	NodeID = graph.NodeID
	// EdgeID identifies one unreliable arc of a Network. Ids are dense
	// (0..NumUnreliable()-1) and stable in (from, to) order; see
	// Network.UnreliableEdges for the adversary-facing index.
	EdgeID = graph.EdgeID
	// GraphBuilder accumulates edges during construction; Freeze compacts
	// it into an immutable CSR Graph.
	GraphBuilder = graph.Builder
	// Graph is an immutable directed or undirected simple graph in
	// compressed-sparse-row form, produced by GraphBuilder.Freeze.
	Graph = graph.Graph
	// Network is a dual-graph network (G, G') with a distinguished source.
	Network = graph.Dual
	// CollisionRule selects one of the paper's rules CR1-CR4.
	CollisionRule = sim.CollisionRule
	// StartRule selects synchronous or asynchronous start.
	StartRule = sim.StartRule
	// Reception is what a process hears in a round.
	Reception = sim.Reception
	// Process is one automaton of a broadcast algorithm.
	Process = sim.Process
	// Algorithm creates processes.
	Algorithm = sim.Algorithm
	// Adversary controls assignments, unreliable deliveries, and CR4.
	Adversary = sim.Adversary
	// View is the read-only state exposed to adversaries.
	View = sim.View
	// Config parameterizes a run.
	Config = sim.Config
	// Result summarizes an execution.
	Result = sim.Result
)

// Collision and start rules.
const (
	CR1 = sim.CR1
	CR2 = sim.CR2
	CR3 = sim.CR3
	CR4 = sim.CR4

	SyncStart  = sim.SyncStart
	AsyncStart = sim.AsyncStart
)

// NoDelivery is the CR4 "resolve to silence" sentinel for Adversary
// implementations.
const NoDelivery = sim.NoDelivery

// Reception kinds.
const (
	Silence   = sim.Silence
	Delivered = sim.Delivered
	Collision = sim.Collision
)

// Run executes an algorithm against an adversary on a network.
func Run(net *Network, alg Algorithm, adv Adversary, cfg Config) (*Result, error) {
	return sim.Run(net, alg, adv, cfg)
}

// EngineConfig configures the parallel trial engine behind RunMany: worker
// pool size and work batch size. The zero value runs one worker per logical
// CPU. Neither setting ever changes results, only throughput.
type EngineConfig = engine.Config

// BufferedAdversary is the optional allocation-free delivery interface; see
// sim.BufferedDeliverer. All built-in adversaries implement it except
// Benign (deliberately map-only, since it delivers nothing and is the most
// commonly embedded adversary); map-based third-party adversaries keep
// working unchanged.
type BufferedAdversary = sim.BufferedDeliverer

// DeliverySink collects a round's unreliable deliveries for BufferedAdversary
// implementations.
type DeliverySink = sim.DeliverySink

// RunMany executes trials independent runs of the same (net, alg, adv, cfg)
// combination across a worker pool, returning results indexed by trial.
// Trial i's seed is a SplitMix64-style mix of cfg.Seed and i — a pure
// function of the trial index, so for a fixed cfg.Seed the returned slice
// is bit-identical at any worker count, while different cfg.Seed values
// yield statistically independent replications. On error it reports the
// lowest-indexed failing trial.
func RunMany(net *Network, alg Algorithm, adv Adversary, cfg Config, trials int, ec EngineConfig) ([]*Result, error) {
	return engine.RunMany(net, alg, adv, cfg, trials, ec)
}

// RunManyContext is RunMany with cooperative cancellation: the sweep stops
// at the next work-batch boundary once ctx is done and returns an error
// satisfying errors.Is(err, ctx.Err()). Results are only returned for runs
// that finish uncancelled; determinism is unaffected (a completed call is
// bit-identical to RunMany).
func RunManyContext(ctx context.Context, net *Network, alg Algorithm, adv Adversary, cfg Config, trials int, ec EngineConfig) ([]*Result, error) {
	return engine.RunManyContext(ctx, net, alg, adv, cfg, trials, ec)
}

// Streaming trial aggregation (memory-bounded sweeps).
type (
	// Stream is an online, mergeable summary statistic accumulator:
	// Welford mean/variance, exact min/max/count, and quantiles that are
	// exact up to a spill threshold and P²-estimated beyond it.
	Stream = stats.Stream
	// StreamConfig selects the tracked quantiles and the exact-until-K
	// spill threshold of a RunStream summary; the zero value tracks
	// p50/p90/p95/p99 with the default threshold.
	StreamConfig = engine.StreamConfig
	// TrialSummary is the streaming aggregate of a RunStream sweep.
	TrialSummary = engine.TrialSummary
)

// NewStream builds a standalone streaming accumulator (see Stream).
var NewStream = stats.NewStream

// Checkpointed, resumable sweeps: completed (cell, shard) accumulators are
// serialized bit-exactly (TrialSummary.MarshalBinary), appended crash-safely
// to a checkpoint file as the grid runs, and restored on resume — the
// restored run's results and output are byte-identical to an uninterrupted
// run at any worker count on either side of the interruption. See
// internal/checkpoint for the file format and ARCHITECTURE.md for the data
// flow.
type (
	// ShardKey names one (cell, shard) work unit of a grid run.
	ShardKey = engine.ShardKey
	// ShardState is one completed work unit: identity, trial range, and the
	// accumulator folded over exactly those trials. Delivered through the
	// StreamFrom onShard callback; consume (serialize) the summary during
	// the call.
	ShardState = engine.ShardState
	// CheckpointMeta identifies the run a checkpoint belongs to (sweep hash,
	// grid shape, stream configuration); build it with CheckpointMetaFor.
	CheckpointMeta = checkpoint.Meta
	// CheckpointRecord is one persisted work unit.
	CheckpointRecord = checkpoint.Record
	// CheckpointWriter appends records to a checkpoint file; Append is
	// concurrency-safe and syncs before returning.
	CheckpointWriter = checkpoint.Writer
	// EngineTrial is one fully materialized trial setup — what FoldShard
	// executes; build it from a Scenario's Build() fields.
	EngineTrial = engine.Trial
	// ErrCheckpointVersion reports a checkpoint file format this build does
	// not speak.
	ErrCheckpointVersion = checkpoint.ErrVersion
	// ErrCheckpointSpecMismatch reports a checkpoint recorded for a different
	// sweep or different run parameters — resuming it would splice state
	// from a different experiment.
	ErrCheckpointSpecMismatch = checkpoint.ErrSpecMismatch
)

// ErrCheckpointCorrupt identifies structurally damaged checkpoint data (a
// torn trailing record is recovered, not an error).
var ErrCheckpointCorrupt = checkpoint.ErrCorrupt

var (
	// CreateCheckpoint starts a fresh checkpoint file.
	CreateCheckpoint = checkpoint.Create
	// RecoverCheckpoint reads a checkpoint's intact records (read-only).
	RecoverCheckpoint = checkpoint.Recover
	// ResumeCheckpoint recovers a checkpoint, truncates any torn tail, and
	// returns a writer positioned to append after the intact records.
	ResumeCheckpoint = checkpoint.Resume
	// CheckpointSeed converts recovered records into the seed map
	// Sweep.StreamFrom takes.
	CheckpointSeed = checkpoint.SeedMap
	// CheckpointMetaFor assembles a run identity; every creator and resumer
	// must build it the same way for the stale-checkpoint gate to work.
	CheckpointMetaFor = checkpoint.MetaFor
	// FoldShard executes one (cell, shard) unit's trials sequentially — the
	// worker side of the coordinator protocol; its accumulator is
	// bit-identical to the one the in-process engine builds for that unit.
	FoldShard = engine.FoldShardContext
	// ShardsOf returns the number of accumulator shards of an n-trial sweep.
	ShardsOf = engine.Shards
	// ShardRange returns the trial range of one shard of an n-trial sweep.
	ShardRange = engine.ShardRange
)

// Dynamic networks: epoch-scheduled time-varying topologies.
type (
	// EpochSchedule produces the sequence of frozen networks (epochs) of a
	// dynamic run; see the internal/graph dynamic-dual-graph docs for the
	// purity and validity contract. Built-ins: StaticSchedule, and the
	// churn/fade/waypoint schedules addressed through the schedule registry
	// (WithSchedule, NamedSchedule).
	EpochSchedule = graph.Schedule
	// StaticSchedule wraps a fixed network as a schedule; RunDynamic over it
	// is exactly Run.
	StaticSchedule = graph.StaticSchedule
)

// StaticNetwork wraps a fixed network as the trivial epoch schedule.
var StaticNetwork = graph.Static

// EpochSeed derives one epoch's randomness seed from a run seed — the
// epoch-indexed analogue of the engine's per-trial seed derivation.
var EpochSeed = graph.EpochSeed

// RunDynamic executes alg against adv on the time-varying network produced
// by sched: every EpochLength rounds the current network is swapped for the
// next epoch while algorithm, adversary, and per-node state survive. A
// static schedule takes exactly the code path Run takes.
func RunDynamic(sched EpochSchedule, alg Algorithm, adv Adversary, cfg Config) (*Result, error) {
	return sim.RunDynamic(sched, alg, adv, cfg)
}

// RunManySchedule is RunMany over a dynamic network: trial i's seed is the
// same pure function of (cfg.Seed, i), and each trial's epoch randomness is
// derived from its trial seed, so dynamic sweeps too are bit-identical at
// any worker count.
func RunManySchedule(sched EpochSchedule, alg Algorithm, adv Adversary, cfg Config, trials int, ec EngineConfig) ([]*Result, error) {
	return engine.RunManySchedule(sched, alg, adv, cfg, trials, ec)
}

// RunManyScheduleContext is RunManySchedule with cooperative cancellation
// (see RunManyContext for the contract).
func RunManyScheduleContext(ctx context.Context, sched EpochSchedule, alg Algorithm, adv Adversary, cfg Config, trials int, ec EngineConfig) ([]*Result, error) {
	return engine.RunManyScheduleContext(ctx, sched, alg, adv, cfg, trials, ec)
}

// RunStreamSchedule is RunStream over a dynamic network (memory-bounded
// dynamic sweeps, same determinism contract as RunManySchedule).
func RunStreamSchedule(sched EpochSchedule, alg Algorithm, adv Adversary, cfg Config, trials int, ec EngineConfig, sc StreamConfig) (*TrialSummary, error) {
	return engine.RunStreamSchedule(sched, alg, adv, cfg, trials, ec, sc)
}

// RunStreamScheduleContext is RunStreamSchedule with cooperative
// cancellation: the reduction stops at the next shard boundary once ctx is
// done (see RunManyContext for the error contract).
func RunStreamScheduleContext(ctx context.Context, sched EpochSchedule, alg Algorithm, adv Adversary, cfg Config, trials int, ec EngineConfig, sc StreamConfig) (*TrialSummary, error) {
	return engine.RunStreamScheduleContext(ctx, sched, alg, adv, cfg, trials, ec, sc)
}

// Epoch-schedule constructors (the registry equivalents are
// NamedSchedule("churn", ...) etc.).
var (
	// NewChurnSchedule models per-epoch node crash/recovery over a base
	// network (backbone links survive, so every epoch stays a valid Dual).
	NewChurnSchedule = graph.NewChurn
	// NewFadeSchedule models per-epoch reliable→unreliable link demotion
	// (and automatic recovery) over a base network.
	NewFadeSchedule = graph.NewFade
	// NewWaypointSchedule models random-waypoint mobility over the geometric
	// model; the base network contributes its node count and source.
	NewWaypointSchedule = graph.NewWaypoint
)

// RunStream is the memory-bounded counterpart of RunMany: the same trials,
// worker pool, and per-trial seed derivation, but every Result is folded
// into shard accumulators as soon as it is produced instead of being
// retained, so a ten-million-trial sweep runs in O(1) result memory. The
// summary is bit-identical at any worker count; counts/min/max are exact,
// mean/variance exact up to rounding, and quantiles exact until the trial
// count exceeds StreamConfig.ExactK (P² estimates beyond).
func RunStream(net *Network, alg Algorithm, adv Adversary, cfg Config, trials int, ec EngineConfig, sc StreamConfig) (*TrialSummary, error) {
	return engine.RunStream(net, alg, adv, cfg, trials, ec, sc)
}

// RunStreamContext is RunStream with cooperative cancellation: the
// reduction stops at the next shard boundary once ctx is done (see
// RunManyContext for the error contract).
func RunStreamContext(ctx context.Context, net *Network, alg Algorithm, adv Adversary, cfg Config, trials int, ec EngineConfig, sc StreamConfig) (*TrialSummary, error) {
	return engine.RunStreamContext(ctx, net, alg, adv, cfg, trials, ec, sc)
}

// Declarative scenario and sweep layer: name-addressed, JSON-round-trippable
// experiment specs executed on the deterministic engine. See the package
// docs of internal/spec and internal/registry for the full contracts.
type (
	// Scenario is one declarative simulation cell: topology + algorithm +
	// adversary + run config, addressed by registry names. Build one with
	// NewScenario and functional options, or unmarshal from JSON.
	Scenario = spec.Scenario
	// ScenarioOption mutates a Scenario under construction (WithTopology,
	// WithCollisionRule, ...).
	ScenarioOption = spec.Option
	// BuiltScenario is a materialized Scenario, ready to run.
	BuiltScenario = spec.Built
	// Choice names one registered constructor plus parameter overrides.
	Choice = spec.Choice
	// Params is the parameter bag of a Choice (JSON-friendly: numbers and
	// lists of numbers).
	Params = registry.Params
	// ParamDoc documents one parameter of a registry entry.
	ParamDoc = registry.ParamDoc
	// RegistryEntry is the self-describing header of a registered
	// topology/algorithm/adversary constructor.
	RegistryEntry = registry.Entry
	// ErrUnknownName reports a failed registry lookup, listing valid names
	// and close suggestions.
	ErrUnknownName = registry.ErrUnknownName
	// Sweep is a declarative Cartesian grid of Scenarios: a base cell plus
	// per-axis value lists, executed as one parallel grid run.
	Sweep = spec.Sweep
	// GridCell is one point of an expanded Sweep.
	GridCell = spec.Cell
	// CellResult pairs a grid cell with its streamed trial summary.
	CellResult = spec.CellResult
	// GridResult is the outcome of Sweep.Run, keyed by cell labels; it is
	// bit-identical at any worker count.
	GridResult = spec.GridResult
	// ErrUnsupportedVersion reports a Scenario/Sweep/job document whose
	// "version" field names a wire format this build does not speak (an
	// absent or zero version reads as version 1).
	ErrUnsupportedVersion = spec.ErrUnsupportedVersion
	// ErrDuplicateLabel reports a Sweep whose expansion produces two cells
	// with the same label (duplicate axis values), which would make the
	// label-keyed results ambiguous.
	ErrDuplicateLabel = spec.ErrDuplicateLabel
)

// WireVersion is the spec wire-format version this build reads and writes.
// Documents with an absent or zero "version" field are read as version 1;
// anything else is rejected with *ErrUnsupportedVersion.
const WireVersion = spec.WireVersion

// FormatSummary renders one TrialSummary as the canonical aggregate line
// shared by `dgsim -stream`, `dgsim -spec`, and the dgsimd results API — the
// single formatter that makes their outputs byte-comparable.
var FormatSummary = spec.FormatSummary

// Scenario construction and functional options.
var (
	// NewScenario builds a Scenario from the dgsim defaults plus options and
	// validates it once against the registries.
	NewScenario = spec.New
	// DefaultScenario returns the option-free starting scenario.
	DefaultScenario = spec.Default
	// WithTopology selects a registered topology by name.
	WithTopology = spec.WithTopology
	// WithAlgorithm selects a registered algorithm by name.
	WithAlgorithm = spec.WithAlgorithm
	// WithAdversary selects a registered adversary by name.
	WithAdversary = spec.WithAdversary
	// WithN sets the requested network size.
	WithN = spec.WithN
	// WithCollisionRule sets the collision rule.
	WithCollisionRule = spec.WithCollisionRule
	// WithStart sets the start rule.
	WithStart = spec.WithStart
	// WithSeed sets the base seed.
	WithSeed = spec.WithSeed
	// WithMaxRounds caps the execution length.
	WithMaxRounds = spec.WithMaxRounds
	// WithSchedule selects a registered epoch schedule (topology dynamics);
	// "static" is the default fixed-topology behaviour.
	WithSchedule = spec.WithSchedule
)

// Registry introspection and name-addressed construction.
var (
	// ListTopologies returns every registered topology entry, sorted.
	ListTopologies = registry.Topologies
	// ListAlgorithms returns every registered algorithm entry, sorted.
	ListAlgorithms = registry.Algorithms
	// ListAdversaries returns every registered adversary entry, sorted.
	ListAdversaries = registry.Adversaries
	// ListSchedules returns every registered epoch-schedule entry, sorted.
	ListSchedules = registry.Schedules
	// NamedTopology builds a registered topology by name at size n.
	NamedTopology = registry.Topology
	// NamedAlgorithm builds a registered algorithm by name for n processes.
	NamedAlgorithm = registry.Algorithm
	// NamedAdversary builds a registered adversary by name.
	NamedAdversary = registry.Adversary
	// NamedSchedule builds a registered epoch schedule by name over an
	// already-built base network.
	NamedSchedule = registry.Schedule
	// TopologyInfo returns the entry header of a named topology.
	TopologyInfo = registry.TopologyInfo
	// AlgorithmInfo returns the entry header of a named algorithm.
	AlgorithmInfo = registry.AlgorithmInfo
	// AdversaryInfo returns the entry header of a named adversary.
	AdversaryInfo = registry.AdversaryInfo
	// ScheduleInfo returns the entry header of a named epoch schedule.
	ScheduleInfo = registry.ScheduleInfo
	// WriteRegistry renders every registry with parameter docs (the -list
	// output of both CLIs).
	WriteRegistry = registry.WriteList
	// WriteRegistryMarkdown renders every registry as the generated
	// docs/REGISTRY.md (see `make docs-registry`).
	WriteRegistryMarkdown = registry.WriteMarkdown
)

// Graph construction.
var (
	// NewGraph returns an empty n-node graph builder (historical name of
	// NewGraphBuilder).
	NewGraph = graph.NewGraph
	// NewGraphBuilder returns an empty n-node graph builder.
	NewGraphBuilder = graph.NewBuilder
	// NewNetwork validates and assembles a dual graph network (G, G') from
	// two builders, freezing both.
	NewNetwork = graph.NewDual
	// NewNetworkGraphs assembles a network from already-frozen graphs.
	NewNetworkGraphs = graph.NewDualGraphs
	// Classical wraps a single graph as the network (G, G).
	Classical = graph.Classical
)

// Topology generators.
var (
	// CliqueBridge is the Theorem 2 network: an (n-1)-clique plus a receiver
	// behind a bridge; G' complete.
	CliqueBridge = graph.CliqueBridge
	// CompleteLayered is the Theorem 12 network of two-node layers.
	CompleteLayered = graph.CompleteLayered
	// Line is the classical path.
	Line = graph.Line
	// Star is the classical star.
	Star = graph.Star
	// Complete is the classical clique.
	Complete = graph.Complete
	// BinaryTree is the classical complete binary tree.
	BinaryTree = graph.BinaryTree
	// Grid is a lattice with random unreliable gray-zone links.
	Grid = graph.Grid
	// RandomDual is a random connected G plus random unreliable edges.
	RandomDual = graph.RandomDual
	// Geometric is a unit-square placement with reliable short links and
	// unreliable longer ones; cell-bucketed construction scales it to
	// 100k+ nodes.
	Geometric = graph.Geometric
	// PreferentialAttachment is a scale-free Barabási–Albert dual graph
	// with a tunable unreliable fraction on the attachment links.
	PreferentialAttachment = graph.PreferentialAttachment
	// DirectedLayered is a directed layered dual graph.
	DirectedLayered = graph.DirectedLayered
	// LayeredRandom is an undirected layered dual graph with given layer
	// sizes.
	LayeredRandom = graph.LayeredRandom
)

// Algorithms.
type (
	// StrongSelect is the deterministic Section 5 algorithm.
	StrongSelect = core.StrongSelect
	// Harmonic is the randomized Section 7 algorithm.
	Harmonic = core.Harmonic
	// RoundRobin is the deterministic baseline.
	RoundRobin = core.RoundRobin
	// Decay is the classical randomized baseline.
	Decay = core.Decay
	// Uniform is the fixed-probability baseline.
	Uniform = core.Uniform
	// DeltaSelect is the Δ-aware oblivious baseline (Clementi et al.).
	DeltaSelect = core.DeltaSelect
	// TreeCast is a centralized known-topology BFS schedule.
	TreeCast = core.TreeCast
)

// Algorithm constructors.
var (
	// NewStrongSelect builds Strong Select for n processes.
	NewStrongSelect = core.NewStrongSelect
	// NewHarmonic builds Harmonic Broadcast with an explicit level length T.
	NewHarmonic = core.NewHarmonic
	// NewHarmonicForN builds Harmonic Broadcast with the paper's
	// T = ceil(12 ln(n/ε)).
	NewHarmonicForN = core.NewHarmonicForN
	// NewRoundRobin builds the round-robin baseline.
	NewRoundRobin = core.NewRoundRobin
	// NewDecay builds the Decay baseline.
	NewDecay = core.NewDecay
	// NewUniform builds the uniform-probability baseline.
	NewUniform = core.NewUniform
	// NewDeltaSelect builds the Δ-aware baseline for a known in-degree
	// bound on G'.
	NewDeltaSelect = core.NewDeltaSelect
	// NewTreeCast precomputes a BFS broadcast schedule over a trusted graph.
	NewTreeCast = core.NewTreeCast
)

// Adversaries.
type (
	// Benign never uses unreliable edges.
	Benign = adversary.Benign
	// FullDelivery always delivers every unreliable edge.
	FullDelivery = adversary.FullDelivery
	// RandomAdversary delivers unreliable edges with probability P.
	RandomAdversary = adversary.Random
	// GreedyCollider adaptively jams single deliveries into collisions.
	GreedyCollider = adversary.GreedyCollider
	// Theorem2Adversary implements the proof rules of Theorem 2.
	Theorem2Adversary = adversary.Theorem2
	// AdaptiveAdversary plays an online best-response search each round;
	// with an unbounded horizon it realizes the exhaustive worst case.
	AdaptiveAdversary = adversary.Adaptive
)

// Adversary constructors.
var (
	// NewRandomAdversary validates p and builds a stochastic adversary.
	NewRandomAdversary = adversary.NewRandom
	// NewTheorem2Adversary builds the Theorem 2 adversary with the given
	// bridge process id.
	NewTheorem2Adversary = adversary.NewTheorem2
	// NewAdaptiveAdversary validates the search parameters (delivery
	// horizon, search rounds, node budget, table size; zeros mean the
	// documented defaults) and builds an adaptive best-response adversary.
	NewAdaptiveAdversary = adversary.NewAdaptive
)

// Strongly selective families (Section 5 selection objects).
type (
	// SelectiveFamily is an (n,k)-strongly-selective family.
	SelectiveFamily = ssf.Family
)

// Selective family constructors and checkers.
var (
	// NewSelectiveFamily returns the smallest available (n,k)-SSF.
	NewSelectiveFamily = ssf.New
	// VerifySelectiveFamily exhaustively checks strong selectivity.
	VerifySelectiveFamily = ssf.Verify
)

// Lower-bound games.
var (
	// RunTheorem2Game forces any deterministic algorithm past n-3 rounds on
	// a 2-broadcastable network.
	RunTheorem2Game = lowerbound.RunTheorem2Game
	// RunTheorem4 Monte-Carlo-bounds randomized success probability.
	RunTheorem4 = lowerbound.RunTheorem4
	// RunTheorem12Game forces Ω(n log n) rounds on the layered network.
	RunTheorem12Game = lowerbound.RunTheorem12Game
)

// Explicit-interference model (Lemma 1).
type (
	// InterferenceModel is an explicit-interference network (G_T, G_I).
	InterferenceModel = interference.Model
	// ReductionAdversary is the Lemma 1 dual-graph adversary.
	ReductionAdversary = interference.ReductionAdversary
)

// Interference constructors and runner.
var (
	// NewInterferenceModel validates G_T ⊆ G_I.
	NewInterferenceModel = interference.NewModel
	// RunInterference executes an algorithm natively in the
	// explicit-interference model.
	RunInterference = interference.Run
)

// Repeated broadcast (the paper's Section 8 future work).
type (
	// RepeatProtocol creates processes for repeated broadcast.
	RepeatProtocol = repeat.Protocol
	// RepeatConfig parameterizes a repeated-broadcast run.
	RepeatConfig = repeat.Config
	// RepeatResult summarizes a repeated-broadcast execution.
	RepeatResult = repeat.Result
)

// Repeated broadcast constructors and runner.
var (
	// NewSequentialRepeat runs one single-message protocol per message.
	NewSequentialRepeat = repeat.NewSequential
	// NewPipelinedRepeat keeps all messages in flight.
	NewPipelinedRepeat = repeat.NewPipelined
	// RunRepeat executes a repeated-broadcast protocol.
	RunRepeat = repeat.Run
)

// Link-quality estimation (the introduction's ETX-style culling).
type (
	// LinkSurvey is the outcome of a probing phase.
	LinkSurvey = linkest.Survey
)

// ProbeLinks runs a collision-free probing phase and culls links below the
// delivery-rate threshold.
var ProbeLinks = linkest.Probe

// Exhaustive worst-case adversary search for small instances.
type (
	// SearchConfig parameterizes an exhaustive adversary search.
	SearchConfig = exhaustive.Config
	// SearchResult is the worst case found.
	SearchResult = exhaustive.Result
)

// SearchWorstCase explores every adversary delivery behaviour on a small
// network and returns the execution maximizing broadcast time.
var SearchWorstCase = exhaustive.Search

// Broadcastability analysis (Section 3: k-broadcastable networks).
type (
	// BroadcastSchedule is an omniscient per-round transmitter schedule.
	BroadcastSchedule = schedule.Schedule
)

// Broadcastability schedulers.
var (
	// ExactSchedule finds a minimum-length guaranteed schedule (small n).
	ExactSchedule = schedule.Exact
	// GreedySchedule finds a guaranteed schedule at any size.
	GreedySchedule = schedule.Greedy
	// ScheduleAlg wraps a schedule as a runnable Algorithm.
	ScheduleAlg = schedule.Alg
)

// NewRand returns a seeded math/rand source for topology generators; it
// exists so example programs do not need to import math/rand themselves.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

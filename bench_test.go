// Benchmarks regenerating the paper's evaluation: one benchmark per table
// row family / figure / ablation (see the DESIGN.md experiment index).
// Besides ns/op they report the domain metric that the paper's tables are
// about — broadcast rounds — via the custom "rounds" metric.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package dualgraph_test

import (
	"context"
	"fmt"
	"path/filepath"
	"runtime"
	"testing"

	"dualgraph"
	"dualgraph/internal/adversary"
	"dualgraph/internal/core"
	"dualgraph/internal/engine"
	"dualgraph/internal/exhaustive"
	"dualgraph/internal/expt"
	"dualgraph/internal/graph"
	"dualgraph/internal/interference"
	"dualgraph/internal/linkest"
	"dualgraph/internal/lowerbound"
	"dualgraph/internal/metrics"
	"dualgraph/internal/repeat"
	"dualgraph/internal/sim"
	"dualgraph/internal/ssf"
	"dualgraph/internal/stats"
)

// benchRun executes one simulation per iteration and reports the mean
// completion round as the "rounds" metric.
func benchRun(b *testing.B, d *graph.Dual, mkAlg func() (sim.Algorithm, error), adv sim.Adversary, cfg sim.Config) {
	b.Helper()
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alg, err := mkAlg()
		if err != nil {
			b.Fatal(err)
		}
		c := cfg
		c.Seed = cfg.Seed + int64(i)
		res, err := sim.Run(d, alg, adv, c)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed {
			b.Fatalf("broadcast incomplete within %d rounds", c.MaxRounds)
		}
		total += res.Rounds
	}
	b.ReportMetric(float64(total)/float64(b.N), "rounds")
}

// BenchmarkTable1ClassicalRoundRobin — Table 1, classical column: O(n)
// deterministic broadcast (round robin, benign adversary, G = G').
func BenchmarkTable1ClassicalRoundRobin(b *testing.B) {
	for _, n := range []int{32, 64, 128, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			// The line is the hard O(n) case: one hop per full schedule pass
			// is not needed because node ids advance along the path, so
			// round robin finishes in n-1 rounds — linear, as Table 1 says.
			d, err := graph.Line(n)
			if err != nil {
				b.Fatal(err)
			}
			benchRun(b, d, func() (sim.Algorithm, error) { return core.NewRoundRobin(), nil },
				adversary.Benign{}, sim.Config{Rule: sim.CR3, Start: sim.SyncStart, Seed: 1})
		})
	}
}

// BenchmarkTable1DualStrongSelect — Table 1, dual column (bold): Strong
// Select under CR4/async against the adaptive adversary.
func BenchmarkTable1DualStrongSelect(b *testing.B) {
	for _, n := range []int{33, 65, 129, 257} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			d, err := graph.CliqueBridge(n)
			if err != nil {
				b.Fatal(err)
			}
			benchRun(b, d, func() (sim.Algorithm, error) { return core.NewStrongSelect(n) },
				adversary.GreedyCollider{}, sim.Config{Rule: sim.CR4, Start: sim.AsyncStart, Seed: 1})
		})
	}
}

// BenchmarkTable1Theorem2LowerBound — the Theorem 2 adversary game (forced
// rounds > n-3 at diameter 2).
func BenchmarkTable1Theorem2LowerBound(b *testing.B) {
	for _, n := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			forced := 0
			for i := 0; i < b.N; i++ {
				res, err := lowerbound.RunTheorem2Game(n, core.NewRoundRobin(), 0)
				if err != nil {
					b.Fatal(err)
				}
				forced = res.ForcedRounds
			}
			b.ReportMetric(float64(forced), "forced-rounds")
		})
	}
}

// BenchmarkTable1Theorem12LowerBound — the Theorem 12 candidate-set game
// (forced rounds ≥ (n-1)/4·(log2(n-1)-2)).
func BenchmarkTable1Theorem12LowerBound(b *testing.B) {
	for _, n := range []int{9, 17, 33} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			forced := 0
			for i := 0; i < b.N; i++ {
				res, err := lowerbound.RunTheorem12Game(n, core.NewRoundRobin(), 0)
				if err != nil {
					b.Fatal(err)
				}
				forced = res.ForcedRounds
			}
			b.ReportMetric(float64(forced), "forced-rounds")
		})
	}
}

// BenchmarkTable2ClassicalDecay — Table 2, classical column: randomized
// broadcast via Decay on classical graphs.
func BenchmarkTable2ClassicalDecay(b *testing.B) {
	for _, n := range []int{32, 64, 128, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			d, err := graph.Complete(n)
			if err != nil {
				b.Fatal(err)
			}
			benchRun(b, d, func() (sim.Algorithm, error) { return core.NewDecay(), nil },
				adversary.Benign{}, sim.Config{Rule: sim.CR3, Start: sim.AsyncStart, Seed: 1, MaxRounds: 4000 * n})
		})
	}
}

// BenchmarkTable2DualHarmonic — Table 2, dual column (bold): Harmonic
// Broadcast on dual graphs against the adaptive adversary.
func BenchmarkTable2DualHarmonic(b *testing.B) {
	for _, n := range []int{33, 65, 129, 257} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			d, err := graph.CliqueBridge(n)
			if err != nil {
				b.Fatal(err)
			}
			alg, err := core.NewHarmonicForN(n, 0.02)
			if err != nil {
				b.Fatal(err)
			}
			bound := int(2 * float64(n*alg.T) * stats.HarmonicNumber(n))
			benchRun(b, d, func() (sim.Algorithm, error) { return alg, nil },
				adversary.GreedyCollider{}, sim.Config{Rule: sim.CR4, Start: sim.AsyncStart, Seed: 1, MaxRounds: bound})
		})
	}
}

// BenchmarkTable2Theorem4 — the Theorem 4 Monte-Carlo harness.
func BenchmarkTable2Theorem4(b *testing.B) {
	n, k := 14, 5
	alg, err := core.NewUniform(0.25)
	if err != nil {
		b.Fatal(err)
	}
	minSuccess := 0.0
	for i := 0; i < b.N; i++ {
		res, err := lowerbound.RunTheorem4(n, k, 40, alg, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		minSuccess = res.MinSuccess
	}
	b.ReportMetric(minSuccess, "min-success")
	b.ReportMetric(float64(k)/float64(n-2), "thm4-bound")
}

// BenchmarkSeparation — classical vs dual on the same topology (Section 1
// separation claim), reported as dual rounds for Strong Select.
func BenchmarkSeparation(b *testing.B) {
	n := 65
	dual, err := graph.CliqueBridge(n)
	if err != nil {
		b.Fatal(err)
	}
	classical, err := graph.ClassicalFrozen(dual.G(), dual.Source())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("classical", func(b *testing.B) {
		benchRun(b, classical, func() (sim.Algorithm, error) { return core.NewStrongSelect(n) },
			adversary.Benign{}, sim.Config{Rule: sim.CR4, Start: sim.AsyncStart, Seed: 1})
	})
	b.Run("dual", func(b *testing.B) {
		benchRun(b, dual, func() (sim.Algorithm, error) { return core.NewStrongSelect(n) },
			adversary.GreedyCollider{}, sim.Config{Rule: sim.CR4, Start: sim.AsyncStart, Seed: 1})
	})
}

// BenchmarkBusyRounds — Lemma 15 busy-round counting over wake-up patterns.
func BenchmarkBusyRounds(b *testing.B) {
	n, T := 128, 4
	pattern := core.FrontLoadedPattern(n)
	bound := float64(n*T) * stats.HarmonicNumber(n)
	horizon := int(4*bound) + 100
	busy := 0
	for i := 0; i < b.N; i++ {
		busy = core.BusyRounds(pattern, T, horizon)
		if float64(busy) > bound {
			b.Fatalf("Lemma 15 violated: %d > %.0f", busy, bound)
		}
	}
	b.ReportMetric(float64(busy), "busy-rounds")
	b.ReportMetric(bound, "lemma15-bound")
}

// BenchmarkSSFConstruction — constructive Kautz-Singleton SSF sizes
// (Section 5 selection objects).
func BenchmarkSSFConstruction(b *testing.B) {
	for _, c := range []struct{ n, k int }{{1024, 4}, {4096, 8}, {16384, 16}} {
		b.Run(fmt.Sprintf("n=%d/k=%d", c.n, c.k), func(b *testing.B) {
			size := 0
			for i := 0; i < b.N; i++ {
				f, err := ssf.NewReedSolomon(c.n, c.k)
				if err != nil {
					b.Fatal(err)
				}
				size = f.Size()
			}
			b.ReportMetric(float64(size), "family-size")
		})
	}
}

// BenchmarkLemma1Reduction — dual-graph algorithm on an
// explicit-interference network via the Appendix A reduction adversary.
func BenchmarkLemma1Reduction(b *testing.B) {
	d, err := graph.RandomDual(64, 0.12, 0.35, dualgraph.NewRand(5))
	if err != nil {
		b.Fatal(err)
	}
	m := interference.FromDual(d)
	b.Run("native", func(b *testing.B) {
		total := 0
		for i := 0; i < b.N; i++ {
			alg, err := core.NewHarmonicForN(64, 0.02)
			if err != nil {
				b.Fatal(err)
			}
			res, err := interference.Run(m, alg, sim.Config{Seed: int64(i), MaxRounds: 200000})
			if err != nil {
				b.Fatal(err)
			}
			total += res.Rounds
		}
		b.ReportMetric(float64(total)/float64(b.N), "rounds")
	})
	b.Run("reduction", func(b *testing.B) {
		benchRun(b, m.Dual(), func() (sim.Algorithm, error) { return core.NewHarmonicForN(64, 0.02) },
			interference.ReductionAdversary{}, sim.Config{Seed: 0, MaxRounds: 200000})
	})
}

// BenchmarkCollisionRules — CR1-CR4 ablation on the layered network.
func BenchmarkCollisionRules(b *testing.B) {
	n := 33
	d, err := graph.CompleteLayered(n)
	if err != nil {
		b.Fatal(err)
	}
	for _, rule := range []sim.CollisionRule{sim.CR1, sim.CR2, sim.CR3, sim.CR4} {
		b.Run(rule.String(), func(b *testing.B) {
			benchRun(b, d, func() (sim.Algorithm, error) { return core.NewStrongSelect(n) },
				adversary.GreedyCollider{}, sim.Config{Rule: rule, Start: sim.AsyncStart, Seed: 1})
		})
	}
}

// BenchmarkHarmonicT — Harmonic Broadcast T ablation (Theorem 18 parameter).
func BenchmarkHarmonicT(b *testing.B) {
	n := 33
	d, err := graph.CliqueBridge(n)
	if err != nil {
		b.Fatal(err)
	}
	paperT := core.HarmonicT(n, 0.02)
	for _, mult := range []float64{0.5, 1, 2} {
		T := int(float64(paperT) * mult)
		b.Run(fmt.Sprintf("T=%.1fx", mult), func(b *testing.B) {
			benchRun(b, d, func() (sim.Algorithm, error) { return core.NewHarmonic(T) },
				adversary.GreedyCollider{}, sim.Config{Rule: sim.CR4, Start: sim.AsyncStart, Seed: 1,
					MaxRounds: 40 * n * paperT})
		})
	}
}

// BenchmarkAdversaryStrength — adversary ablation for Harmonic Broadcast.
func BenchmarkAdversaryStrength(b *testing.B) {
	n := 33
	d, err := graph.CliqueBridge(n)
	if err != nil {
		b.Fatal(err)
	}
	rnd, err := adversary.NewRandom(0.5)
	if err != nil {
		b.Fatal(err)
	}
	advs := []sim.Adversary{adversary.Benign{}, rnd, adversary.GreedyCollider{}, adversary.FullDelivery{}}
	for _, adv := range advs {
		b.Run(adv.Name(), func(b *testing.B) {
			benchRun(b, d, func() (sim.Algorithm, error) { return core.NewHarmonicForN(n, 0.02) },
				adv, sim.Config{Rule: sim.CR4, Start: sim.AsyncStart, Seed: 1, MaxRounds: 400 * n * 10})
		})
	}
}

// BenchmarkExtDeltaSelect — the Section 2.2 Δ-aware baseline on a
// low-degree network where it should win.
func BenchmarkExtDeltaSelect(b *testing.B) {
	d, err := graph.Line(65)
	if err != nil {
		b.Fatal(err)
	}
	delta := d.GPrime().MaxInDegree()
	b.Run("delta-select", func(b *testing.B) {
		benchRun(b, d, func() (sim.Algorithm, error) { return core.NewDeltaSelect(65, delta) },
			adversary.GreedyCollider{}, sim.Config{Rule: sim.CR4, Start: sim.AsyncStart, Seed: 1})
	})
	b.Run("strong-select", func(b *testing.B) {
		benchRun(b, d, func() (sim.Algorithm, error) { return core.NewStrongSelect(65) },
			adversary.GreedyCollider{}, sim.Config{Rule: sim.CR4, Start: sim.AsyncStart, Seed: 1})
	})
}

// BenchmarkExtRepeatedBroadcast — sequential vs pipelined repeated
// broadcast throughput (Section 8 future work).
func BenchmarkExtRepeatedBroadcast(b *testing.B) {
	d, err := graph.CliqueBridge(16)
	if err != nil {
		b.Fatal(err)
	}
	seq, err := repeat.NewSequential(48, false, 0)
	if err != nil {
		b.Fatal(err)
	}
	pipe, err := repeat.NewPipelined(false, 0)
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range []repeat.Protocol{seq, pipe} {
		b.Run(p.Name(), func(b *testing.B) {
			throughput := 0.0
			for i := 0; i < b.N; i++ {
				res, err := repeat.Run(d, p, repeat.Config{
					Messages: 8, MaxRounds: 100000, Seed: int64(i), Adversary: repeat.Greedy,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Completed {
					b.Fatal("repeated broadcast incomplete")
				}
				throughput = res.Throughput
			}
			b.ReportMetric(throughput, "msgs/round")
		})
	}
}

// BenchmarkExtLinkCulling — the probe-cull pipeline of the introduction.
func BenchmarkExtLinkCulling(b *testing.B) {
	d, err := graph.Grid(5, 5, 2, 0.5, dualgraph.NewRand(3))
	if err != nil {
		b.Fatal(err)
	}
	fp := 0
	for i := 0; i < b.N; i++ {
		s, err := linkest.Probe(d, 0.95, 200, 0.75, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		fp = s.FalsePositives
	}
	b.ReportMetric(float64(fp), "false-positives")
}

// BenchmarkExtExhaustiveSearch — exhaustive worst-case adversary search on
// the tiny Theorem 2 network.
func BenchmarkExtExhaustiveSearch(b *testing.B) {
	d, err := graph.CliqueBridge(5)
	if err != nil {
		b.Fatal(err)
	}
	worst := 0
	for i := 0; i < b.N; i++ {
		res, err := exhaustive.Search(d, core.NewRoundRobin(), exhaustive.Config{
			Rule: sim.CR1, Horizon: 40,
		})
		if err != nil {
			b.Fatal(err)
		}
		worst = res.WorstRounds
	}
	b.ReportMetric(float64(worst), "worst-rounds")
}

// BenchmarkAdaptiveAdversaryRound prices one planned round of the adaptive
// best-response adversary on the 5-node clique-bridge: "miss" builds a fresh
// planner per iteration (cold transposition table, full best-response
// search), "hit" re-plans the same position against a warmed table, so the
// pair brackets the table's value.
func BenchmarkAdaptiveAdversaryRound(b *testing.B) {
	d, err := graph.CliqueBridge(5)
	if err != nil {
		b.Fatal(err)
	}
	sched := graph.Static(d)
	cfg := exhaustive.PlannerConfig{Rule: sim.CR1, SearchRounds: 40}
	b.Run("miss", func(b *testing.B) {
		entries := 0
		for i := 0; i < b.N; i++ {
			p, err := exhaustive.NewPlanner(sched, core.NewRoundRobin(), cfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := p.Plan(nil); err != nil {
				b.Fatal(err)
			}
			entries = p.TableLen()
		}
		b.ReportMetric(float64(entries), "table-entries")
	})
	b.Run("hit", func(b *testing.B) {
		p, err := exhaustive.NewPlanner(sched, core.NewRoundRobin(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Plan(nil); err != nil { // warm the table
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.Plan(nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchEngineTrials is the Monte Carlo workload used to compare the
// sequential and parallel trial paths: Harmonic Broadcast against the
// adaptive adversary on the clique-bridge network.
func benchEngineTrials(b *testing.B, workers int) {
	b.Helper()
	n := 65
	d, err := graph.CliqueBridge(n)
	if err != nil {
		b.Fatal(err)
	}
	alg, err := core.NewHarmonicForN(n, 0.02)
	if err != nil {
		b.Fatal(err)
	}
	bound := int(2 * float64(n*alg.T) * stats.HarmonicNumber(n))
	simCfg := sim.Config{Rule: sim.CR4, Start: sim.AsyncStart, Seed: 1, MaxRounds: bound}
	const trials = 64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := engine.RunMany(d, alg, adversary.GreedyCollider{}, simCfg, trials,
			engine.Config{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		for _, res := range results {
			if !res.Completed {
				b.Fatal("broadcast incomplete")
			}
		}
	}
	b.ReportMetric(float64(trials), "trials/op")
}

// BenchmarkEngineSequential is the single-worker baseline for the trial
// engine: 64 Table 2 style trials on one core.
func BenchmarkEngineSequential(b *testing.B) {
	benchEngineTrials(b, 1)
}

// BenchmarkEngineParallel fans the same 64 trials out over one worker per
// CPU. On a machine with >= 4 cores this shows the engine's multi-core
// speedup (>= 2x vs BenchmarkEngineSequential); results are bit-identical
// to the sequential run either way.
func BenchmarkEngineParallel(b *testing.B) {
	benchEngineTrials(b, runtime.GOMAXPROCS(0))
}

// benchEngineReduce runs the same Monte Carlo workload as benchEngineTrials
// through the streaming reducer: identical trials and seeds, but folded into
// shard accumulators instead of a materialized result slice.
func benchEngineReduce(b *testing.B, workers int) {
	b.Helper()
	n := 65
	d, err := graph.CliqueBridge(n)
	if err != nil {
		b.Fatal(err)
	}
	alg, err := core.NewHarmonicForN(n, 0.02)
	if err != nil {
		b.Fatal(err)
	}
	bound := int(2 * float64(n*alg.T) * stats.HarmonicNumber(n))
	simCfg := sim.Config{Rule: sim.CR4, Start: sim.AsyncStart, Seed: 1, MaxRounds: bound}
	const trials = 64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum, err := engine.RunStream(d, alg, adversary.GreedyCollider{}, simCfg, trials,
			engine.Config{Workers: workers}, engine.StreamConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if sum.Completed != trials {
			b.Fatalf("broadcast incomplete: %d/%d", sum.Completed, sum.Trials)
		}
	}
	b.ReportMetric(float64(trials), "trials/op")
}

// BenchmarkEngineReduceSequential is the single-worker streaming-reducer
// baseline: same workload as BenchmarkEngineSequential, O(shards) memory.
func BenchmarkEngineReduceSequential(b *testing.B) {
	benchEngineReduce(b, 1)
}

// BenchmarkEngineReduceParallel fans the reducer's shards out over one
// worker per CPU; the summary is bit-identical to the sequential run.
func BenchmarkEngineReduceParallel(b *testing.B) {
	benchEngineReduce(b, runtime.GOMAXPROCS(0))
}

// benchSimRoundLoop drives 2000 rounds of the word-parallel delivery core on
// the clique-bridge workload; sched selects between the static fast path
// (nil: no epoch branch in the loop at all) and a dynamic schedule paying
// incremental epoch swaps.
func benchSimRoundLoop(b *testing.B, sched func(*graph.Dual) (graph.Schedule, error)) {
	b.Helper()
	n := 65
	d, err := graph.CliqueBridge(n)
	if err != nil {
		b.Fatal(err)
	}
	alg, err := core.NewUniform(0.3)
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.Config{
		Rule: sim.CR4, Start: sim.SyncStart,
		MaxRounds: 2000, RunToMaxRounds: true,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if sched == nil {
			_, err = sim.Run(d, alg, adversary.GreedyCollider{}, cfg)
		} else {
			var s graph.Schedule
			if s, err = sched(d); err == nil {
				_, err = sim.RunDynamic(s, alg, adversary.GreedyCollider{}, cfg)
			}
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimRoundLoop measures the steady-state cost of the delivery hot
// path on a static network: the headline perf-trajectory number (PR 2→7 in
// README's performance notes). Steady-state rounds must not allocate
// (allocs/op stays flat in the round count, dominated by per-run setup).
func BenchmarkSimRoundLoop(b *testing.B) {
	benchSimRoundLoop(b, nil)
}

// BenchmarkSimRoundLoopStatic is BenchmarkSimRoundLoop under its
// mode-explicit name, so BENCH json artifacts track the static-vs-dynamic
// cost split side by side.
func BenchmarkSimRoundLoopStatic(b *testing.B) {
	benchSimRoundLoop(b, nil)
}

// BenchmarkSimRoundLoopDynamic runs the identical workload under a churn
// schedule (epoch every 50 rounds): the delta against the Static variant is
// the whole price of dynamics — incremental epoch materialization, buffer
// re-checks, and delivery-mask refreshes at the boundary.
func BenchmarkSimRoundLoopDynamic(b *testing.B) {
	benchSimRoundLoop(b, func(d *graph.Dual) (graph.Schedule, error) {
		return graph.NewChurn(d, 50, 0.05)
	})
}

// BenchmarkMetricsOverhead pins the observability tax on the sim hot path:
// the same dynamic round-loop workload as BenchmarkSimRoundLoopDynamic (the
// variant that actually crosses metric sites — the static path has zero
// metrics code) with the global gate on versus off. The two sub-benchmark
// deltas are the whole per-run cost of instrumentation, which the bench
// compare gate keeps under its regression threshold.
func BenchmarkMetricsOverhead(b *testing.B) {
	churn := func(d *graph.Dual) (graph.Schedule, error) {
		return graph.NewChurn(d, 50, 0.05)
	}
	b.Run("instrumented", func(b *testing.B) {
		metrics.SetEnabled(true)
		benchSimRoundLoop(b, churn)
	})
	b.Run("uninstrumented", func(b *testing.B) {
		metrics.SetEnabled(false)
		defer metrics.SetEnabled(true)
		benchSimRoundLoop(b, churn)
	})
}

// BenchmarkExperimentsQuick runs the full experiment registry in quick mode
// once per iteration; it is the end-to-end cost of regenerating every table.
func BenchmarkExperimentsQuick(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, e := range expt.All() {
			if err := e.Run(expt.Config{Out: discard{}, Quick: true, Seed: 3}); err != nil {
				b.Fatalf("%s: %v", e.ID, err)
			}
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// benchGridSweep executes a 4-cell × 16-trial declarative grid (two
// topologies × two algorithms of the Table 1/2 workloads) through
// Sweep.Run. Work is fanned out at (cell, shard) granularity, so the
// parallel variant exercises cross-cell parallelism on top of within-cell
// sharding; the GridResult is bit-identical between the two variants.
func benchGridSweep(b *testing.B, workers int) {
	b.Helper()
	base, err := dualgraph.NewScenario(dualgraph.WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	sweep := dualgraph.Sweep{
		Base:       base,
		Topologies: []dualgraph.Choice{{Name: "clique-bridge"}, {Name: "complete-layered"}},
		Algorithms: []dualgraph.Choice{{Name: "harmonic"}, {Name: "strong-select"}},
		Ns:         []int{17},
		Trials:     16,
	}
	cells := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grid, err := sweep.Run(dualgraph.EngineConfig{Workers: workers}, dualgraph.StreamConfig{})
		if err != nil {
			b.Fatal(err)
		}
		cells = len(grid.Cells)
		for _, cr := range grid.Cells {
			if cr.Summary.Completed != cr.Summary.Trials {
				b.Fatalf("cell %s incomplete: %d/%d", cr.Cell.Label, cr.Summary.Completed, cr.Summary.Trials)
			}
		}
	}
	b.ReportMetric(float64(cells*sweep.Trials), "trials/op")
}

// BenchmarkGridSweepSequential runs the grid's cells on a single worker:
// the sequential-cells baseline for cross-cell throughput.
func BenchmarkGridSweepSequential(b *testing.B) {
	benchGridSweep(b, 1)
}

// BenchmarkGridSweepParallel fans the same (cell, shard) units over one
// worker per CPU; output is bit-identical to the sequential run.
func BenchmarkGridSweepParallel(b *testing.B) {
	benchGridSweep(b, runtime.GOMAXPROCS(0))
}

// BenchmarkEpochSwap measures the epoch-boundary cost of the dynamics
// layer in isolation: materializing successive churn epochs of a 1000-node
// geometric dual through the incremental patch path (dirty-row CSR filter
// plus fringe row reuse) — the price a dynamic run pays every epoch-len
// rounds, while rounds within an epoch stay on the allocation-free hot path.
func BenchmarkEpochSwap(b *testing.B) {
	d, err := graph.Geometric(1000, 0.06, 0.14, dualgraph.NewRand(1))
	if err != nil {
		b.Fatal(err)
	}
	sched, err := graph.NewChurn(d, 8, 0.2)
	if err != nil {
		b.Fatal(err)
	}
	arcs := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ep, err := sched.Epoch(1+i%64, 7)
		if err != nil {
			b.Fatal(err)
		}
		arcs = ep.GPrime().NumEdges()
	}
	b.ReportMetric(float64(arcs), "arcs/epoch")
}

// BenchmarkEpochSwapIncremental sweeps the per-epoch churn probability to
// pin the incremental claim: swap cost must scale with the down set and its
// neighbourhood (the dirty rows), not with the network — a 100× drop in
// churn rate should show a large drop in ns/op, where the old full
// Builder→Freeze rebuild was flat across the sweep.
func BenchmarkEpochSwapIncremental(b *testing.B) {
	d, err := graph.Geometric(1000, 0.06, 0.14, dualgraph.NewRand(1))
	if err != nil {
		b.Fatal(err)
	}
	for _, pDown := range []float64{0.002, 0.02, 0.2} {
		b.Run(fmt.Sprintf("pDown=%g", pDown), func(b *testing.B) {
			sched, err := graph.NewChurn(d, 8, pDown)
			if err != nil {
				b.Fatal(err)
			}
			swaps := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ep, err := sched.Epoch(1+i%64, 7)
				if err != nil {
					b.Fatal(err)
				}
				if ep != nil {
					swaps++
				}
			}
			_ = swaps
		})
	}
}

// benchDynamicSweep runs a churn-schedule Monte Carlo sweep through the
// streaming reducer: the end-to-end dynamics path (epoch builds + swaps +
// round loop) under the engine's per-trial seed derivation.
func benchDynamicSweep(b *testing.B, workers int) {
	b.Helper()
	n := 65
	d, err := graph.Geometric(n, 0.28, 0.7, dualgraph.NewRand(1))
	if err != nil {
		b.Fatal(err)
	}
	sched, err := graph.NewChurn(d, 8, 0.2)
	if err != nil {
		b.Fatal(err)
	}
	alg, err := core.NewHarmonicForN(n, 0.02)
	if err != nil {
		b.Fatal(err)
	}
	bound := int(4 * float64(n*alg.T) * stats.HarmonicNumber(n))
	simCfg := sim.Config{Rule: sim.CR4, Start: sim.AsyncStart, Seed: 1, MaxRounds: bound}
	const trials = 32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum, err := engine.RunStreamSchedule(sched, alg, adversary.GreedyCollider{}, simCfg, trials,
			engine.Config{Workers: workers}, engine.StreamConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if sum.Completed != trials {
			b.Fatalf("broadcast incomplete: %d/%d", sum.Completed, sum.Trials)
		}
	}
	b.ReportMetric(float64(trials), "trials/op")
}

// BenchmarkDynamicSweepSequential is the single-worker dynamics baseline:
// 32 churn-schedule trials on one core.
func BenchmarkDynamicSweepSequential(b *testing.B) {
	benchDynamicSweep(b, 1)
}

// BenchmarkDynamicSweepParallel fans the same dynamic trials over one
// worker per CPU; the summary is bit-identical to the sequential run.
func BenchmarkDynamicSweepParallel(b *testing.B) {
	benchDynamicSweep(b, runtime.GOMAXPROCS(0))
}

// BenchmarkCheckpointWriteRestore measures the full checkpoint round trip a
// resumed sweep pays: append every (cell, shard) record of a grid (fsync per
// record — crash safety is the point), then recover the file and build the
// engine seed map. The accumulator itself is folded once outside the timer;
// the benchmark isolates the persistence layer.
func BenchmarkCheckpointWriteRestore(b *testing.B) {
	const (
		cells  = 4
		trials = 64
	)
	n := 17
	d, err := graph.Geometric(n, 0.28, 0.7, dualgraph.NewRand(1))
	if err != nil {
		b.Fatal(err)
	}
	alg, err := core.NewHarmonicForN(n, 0.02)
	if err != nil {
		b.Fatal(err)
	}
	bound := int(4 * float64(n*alg.T) * stats.HarmonicNumber(n))
	simCfg := sim.Config{Rule: sim.CR4, Start: sim.AsyncStart, Seed: 1, MaxRounds: bound}
	shards := dualgraph.ShardsOf(trials)
	sc := engine.StreamConfig{ExactK: 8}
	// One folded single-trial shard, reused for every unit: the records are
	// shaped exactly like a real checkpoint's without re-running the grid.
	sum, err := dualgraph.FoldShard(context.Background(),
		engine.Trial{Net: d, Alg: alg, Adv: adversary.GreedyCollider{}, Cfg: simCfg}, 0, 1, sc)
	if err != nil {
		b.Fatal(err)
	}
	recs := make([]dualgraph.CheckpointRecord, 0, cells*shards)
	for c := 0; c < cells; c++ {
		for s := 0; s < shards; s++ {
			lo, hi := dualgraph.ShardRange(trials, s)
			recs = append(recs, dualgraph.CheckpointRecord{
				Cell: c, Shard: s, TrialLo: lo, TrialHi: hi, Summary: sum,
			})
		}
	}
	meta := dualgraph.CheckpointMetaFor("bench", cells, trials, sc)
	path := filepath.Join(b.TempDir(), "bench.ckpt")

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := dualgraph.CreateCheckpoint(path, meta)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range recs {
			if err := w.Append(r); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		got, _, err := dualgraph.RecoverCheckpoint(path, meta)
		if err != nil {
			b.Fatal(err)
		}
		if seed := dualgraph.CheckpointSeed(got); len(seed) != cells*shards {
			b.Fatalf("recovered %d units, want %d", len(seed), cells*shards)
		}
	}
	b.ReportMetric(float64(cells*shards), "records/op")
}

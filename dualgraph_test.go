package dualgraph_test

import (
	"reflect"
	"testing"

	"dualgraph"
)

func TestFacadeQuickstart(t *testing.T) {
	net, err := dualgraph.Geometric(40, 0.3, 0.7, dualgraph.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	alg, err := dualgraph.NewHarmonicForN(net.N(), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dualgraph.Run(net, alg, dualgraph.GreedyCollider{}, dualgraph.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("quickstart run did not complete")
	}
	if res.Rounds < net.Eccentricity() {
		t.Fatalf("completed in %d rounds, below the eccentricity %d", res.Rounds, net.Eccentricity())
	}
}

func TestFacadeDeterministicStrongSelect(t *testing.T) {
	net, err := dualgraph.CliqueBridge(17)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := dualgraph.NewStrongSelect(net.N())
	if err != nil {
		t.Fatal(err)
	}
	res, err := dualgraph.Run(net, alg, dualgraph.GreedyCollider{}, dualgraph.Config{
		Rule:  dualgraph.CR4,
		Start: dualgraph.AsyncStart,
		Seed:  7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("strong select did not complete")
	}
}

func TestFacadeLowerBoundGames(t *testing.T) {
	res2, err := dualgraph.RunTheorem2Game(12, dualgraph.NewRoundRobin(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.ForcedRounds <= 9 || res2.WitnessRounds != 2 {
		t.Fatalf("theorem 2 game: forced=%d witness=%d", res2.ForcedRounds, res2.WitnessRounds)
	}
	res12, err := dualgraph.RunTheorem12Game(9, dualgraph.NewRoundRobin(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res12.ForcedRounds < res12.TheoryBound {
		t.Fatalf("theorem 12 game: forced=%d theory=%d", res12.ForcedRounds, res12.TheoryBound)
	}
}

func TestFacadeSelectiveFamilies(t *testing.T) {
	f, err := dualgraph.NewSelectiveFamily(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := dualgraph.VerifySelectiveFamily(f, 3); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeInterference(t *testing.T) {
	gt := dualgraph.NewGraph(4, false)
	gt.MustAddEdge(0, 1)
	gt.MustAddEdge(1, 2)
	gt.MustAddEdge(2, 3)
	gi := gt.Clone()
	gi.MustAddEdge(0, 3)
	m, err := dualgraph.NewInterferenceModel(gt, gi, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dualgraph.RunInterference(m, dualgraph.NewRoundRobin(), dualgraph.Config{
		Rule:  dualgraph.CR3,
		Start: dualgraph.SyncStart,
		Seed:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("interference run did not complete")
	}
}

func TestFacadeRunMany(t *testing.T) {
	net, err := dualgraph.CliqueBridge(17)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := dualgraph.NewHarmonicForN(17, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := dualgraph.Config{Seed: 5}
	const trials = 16
	seq, err := dualgraph.RunMany(net, alg, dualgraph.GreedyCollider{}, cfg, trials,
		dualgraph.EngineConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := dualgraph.RunMany(net, alg, dualgraph.GreedyCollider{}, cfg, trials,
		dualgraph.EngineConfig{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != trials || len(par) != trials {
		t.Fatalf("got %d/%d results, want %d", len(seq), len(par), trials)
	}
	for i := range seq {
		if !seq[i].Completed || !par[i].Completed {
			t.Fatalf("trial %d incomplete", i)
		}
		if seq[i].Rounds != par[i].Rounds || seq[i].Transmissions != par[i].Transmissions {
			t.Fatalf("trial %d: sequential and parallel runs diverged", i)
		}
	}
}

// TestFacadeRunStream checks the public streaming sweep: the summary must
// agree with the materialized RunMany results on the same seeds, and with
// itself at any worker count.
func TestFacadeRunStream(t *testing.T) {
	net, err := dualgraph.CliqueBridge(17)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := dualgraph.NewHarmonicForN(17, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := dualgraph.Config{Seed: 5}
	const trials = 16
	results, err := dualgraph.RunMany(net, alg, dualgraph.GreedyCollider{}, cfg, trials,
		dualgraph.EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var ref *dualgraph.TrialSummary
	for _, workers := range []int{1, 4} {
		sum, err := dualgraph.RunStream(net, alg, dualgraph.GreedyCollider{}, cfg, trials,
			dualgraph.EngineConfig{Workers: workers}, dualgraph.StreamConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if sum.Trials != trials || sum.Completed != trials {
			t.Fatalf("workers=%d: %d/%d completed, want all %d", workers, sum.Completed, sum.Trials, trials)
		}
		maxRounds, err := sum.Rounds.Max()
		if err != nil {
			t.Fatal(err)
		}
		wantMax := 0.0
		for _, res := range results {
			if r := float64(res.Rounds); r > wantMax {
				wantMax = r
			}
		}
		if maxRounds != wantMax {
			t.Fatalf("workers=%d: streamed max rounds %v, slice path %v", workers, maxRounds, wantMax)
		}
		if ref == nil {
			ref = sum
			continue
		}
		refMed, _ := ref.Rounds.Median()
		med, _ := sum.Rounds.Median()
		if med != refMed {
			t.Fatalf("median differs across worker counts: %v vs %v", med, refMed)
		}
	}
}

// TestFacadeScenarioAndSweep exercises the declarative layer end to end
// through the public API: a Scenario built with functional options must
// reproduce the positional Run path exactly, and a Sweep's grid must agree
// with its cells run standalone.
func TestFacadeScenarioAndSweep(t *testing.T) {
	scn, err := dualgraph.NewScenario(
		dualgraph.WithTopology("clique-bridge", nil),
		dualgraph.WithN(9),
		dualgraph.WithAlgorithm("harmonic", nil),
		dualgraph.WithAdversary("greedy", nil),
		dualgraph.WithSeed(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	got, err := scn.Run()
	if err != nil {
		t.Fatal(err)
	}
	net, err := dualgraph.CliqueBridge(9)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := dualgraph.NewHarmonicForN(9, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	want, err := dualgraph.Run(net, alg, dualgraph.GreedyCollider{}, dualgraph.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("Scenario.Run differs from the positional Run path")
	}

	sw := dualgraph.Sweep{
		Base:        scn,
		Adversaries: []dualgraph.Choice{{Name: "benign"}, {Name: "greedy"}},
		Trials:      6,
	}
	grid, err := sw.Run(dualgraph.EngineConfig{Workers: 4}, dualgraph.StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(grid.Cells) != 2 {
		t.Fatalf("grid has %d cells", len(grid.Cells))
	}
	cr, ok := grid.Cell("adv=greedy")
	if !ok {
		t.Fatal("adv=greedy cell missing")
	}
	standalone, err := scn.RunStream(6, dualgraph.EngineConfig{Workers: 1}, dualgraph.StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cr.Summary, standalone) {
		t.Fatal("grid cell summary differs from the cell's standalone RunStream")
	}
	if len(dualgraph.ListTopologies()) == 0 || len(dualgraph.ListAlgorithms()) == 0 || len(dualgraph.ListAdversaries()) == 0 {
		t.Fatal("registry listings empty through the facade")
	}
}

// Quickstart: build a random dual-graph network, broadcast with the paper's
// randomized Harmonic algorithm against an adaptive adversary, and print the
// outcome.
package main

import (
	"fmt"
	"log"

	"dualgraph"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 64

	// A dual-graph network: reliable links G plus unreliable links G' \ G
	// that a worst-case adversary controls round by round.
	net, err := dualgraph.RandomDual(n, 0.1, 0.4, dualgraph.NewRand(42))
	if err != nil {
		return fmt.Errorf("build network: %w", err)
	}

	// Harmonic Broadcast (Section 7): after receiving the message a node
	// transmits with probability 1 for T rounds, then 1/2, then 1/3, ...
	alg, err := dualgraph.NewHarmonicForN(n, 0.01)
	if err != nil {
		return fmt.Errorf("build algorithm: %w", err)
	}

	// The adversary jams single deliveries into collisions whenever it can.
	res, err := dualgraph.Run(net, alg, dualgraph.GreedyCollider{}, dualgraph.Config{
		Rule:  dualgraph.CR4,        // weakest collision rule
		Start: dualgraph.AsyncStart, // nodes wake on first reception
		Seed:  1,
	})
	if err != nil {
		return fmt.Errorf("run: %w", err)
	}

	fmt.Printf("network: n=%d, source eccentricity %d, unreliable network\n", n, net.Eccentricity())
	fmt.Printf("algorithm: %s\n", alg.Name())
	fmt.Printf("broadcast completed: %v in %d rounds, %d transmissions\n",
		res.Completed, res.Rounds, res.Transmissions)

	// Show how the message spread.
	byRound := map[int]int{}
	for _, r := range res.FirstReceive {
		byRound[r]++
	}
	covered := 0
	for r := 0; r <= res.Rounds; r++ {
		covered += byRound[r]
		if byRound[r] > 0 {
			fmt.Printf("  round %4d: +%2d nodes (total %d/%d)\n", r, byRound[r], covered, n)
		}
	}
	return nil
}

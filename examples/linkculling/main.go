// Linkculling: the dual graph model's origin story, executable. A sensor
// grid is probed ETX-style; links that deliver most probes survive the cull;
// a tree schedule is computed over the culled topology; and then the
// gray-zone links stop delivering. The tree strands whole subtrees, while
// the topology-oblivious Strong Select algorithm — designed for the dual
// graph model — still completes.
package main

import (
	"fmt"
	"log"

	"dualgraph"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A geometric sensor deployment: short links are reliable, but most of
	// the radio range is "communication gray zone" — long links that
	// sometimes work (Lundgren et al., cited in the paper's introduction).
	net, err := dualgraph.Geometric(30, 0.18, 0.8, dualgraph.NewRand(9))
	if err != nil {
		return err
	}
	n := net.N()

	fmt.Printf("deployment: %d nodes, %d reliable arcs, %d gray-zone arcs\n\n",
		n, net.G().NumEdges(), net.GPrime().NumEdges()-net.G().NumEdges())

	// Phase 1: probe. During probing the gray-zone links deliver 95% of
	// beacons — they look excellent.
	survey, err := dualgraph.ProbeLinks(net, 0.95, 200, 0.75, 1)
	if err != nil {
		return err
	}
	fmt.Printf("probing (200 cycles, keep links with >=75%% delivery):\n")
	fmt.Printf("  kept %d truly reliable arcs, %d flaky arcs passed the cull (precision %.2f)\n\n",
		survey.TruePositives, survey.FalsePositives, survey.Precision())

	// Phase 2: build a broadcast tree over the culled topology.
	culled, err := survey.CulledDual()
	if err != nil {
		return err
	}
	tree, err := dualgraph.NewTreeCast(culled.G(), culled.Source())
	if err != nil {
		return err
	}

	// Phase 3: betrayal. The gray-zone links never deliver again (a benign
	// adversary delivers no unreliable edge).
	resTree, err := dualgraph.Run(net, tree, dualgraph.Benign{}, dualgraph.Config{
		Rule:      dualgraph.CR4,
		Start:     dualgraph.AsyncStart,
		MaxRounds: 4 * n,
		Seed:      2,
	})
	if err != nil {
		return err
	}
	fmt.Printf("tree schedule over the culled topology, after the links turn off:\n")
	reached := 0
	for _, r := range resTree.FirstReceive {
		if r >= 0 {
			reached++
		}
	}
	fmt.Printf("  completed=%v, reached %d/%d nodes\n\n", resTree.Completed, reached, n)

	ss, err := dualgraph.NewStrongSelect(n)
	if err != nil {
		return err
	}
	resSS, err := dualgraph.Run(net, ss, dualgraph.Benign{}, dualgraph.Config{
		Rule:      dualgraph.CR4,
		Start:     dualgraph.AsyncStart,
		MaxRounds: 1_000_000,
		Seed:      2,
	})
	if err != nil {
		return err
	}
	fmt.Printf("strong select (dual-graph algorithm, trusts nothing):\n")
	fmt.Printf("  completed=%v in %d rounds\n\n", resSS.Completed, resSS.Rounds)

	fmt.Println("Culling is a bet that past link behaviour predicts future behaviour.")
	fmt.Println("The dual graph model drops that bet and asks for algorithms that still")
	fmt.Println("work — this is the paper's motivation, end to end.")
	return nil
}

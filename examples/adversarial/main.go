// Adversarial: the Theorem 2 story in runnable form. The clique-bridge
// network can be broadcast in 2 rounds by an omniscient schedule, yet the
// paper's adversary — controlling only which unreliable links deliver and
// which process sits on the bridge — forces every deterministic algorithm
// past n-3 rounds.
package main

import (
	"fmt"
	"log"

	"dualgraph"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 32

	fmt.Printf("Theorem 2 network: %d-node clique + receiver behind a bridge (diameter 2)\n\n", n)

	for _, name := range []string{"round-robin", "strong-select"} {
		alg, err := buildAlg(name, n)
		if err != nil {
			return err
		}
		res, err := dualgraph.RunTheorem2Game(n, alg, 0)
		if err != nil {
			return err
		}
		fmt.Printf("%s:\n", alg.Name())
		fmt.Printf("  omniscient witness schedule: %d rounds\n", res.WitnessRounds)
		fmt.Printf("  against the Theorem 2 adversary: %d rounds (worst bridge pid %d)\n",
			res.ForcedRounds, res.WorstBridgePid)
		fmt.Printf("  paper bound: > n-3 = %d rounds — %s\n\n", n-3, verdict(res.ForcedRounds > n-3))
	}

	// The same network under a benign adversary is easy: the unreliable
	// clique-to-receiver links never matter because the reliable bridge path
	// suffices once the bridge is isolated.
	net, err := dualgraph.CliqueBridge(n)
	if err != nil {
		return err
	}
	h, err := dualgraph.NewHarmonicForN(n, 0.02)
	if err != nil {
		return err
	}
	res, err := dualgraph.Run(net, h, dualgraph.Benign{}, dualgraph.Config{Seed: 3})
	if err != nil {
		return err
	}
	fmt.Printf("randomized harmonic under a benign adversary: %d rounds (completed=%v)\n",
		res.Rounds, res.Completed)
	fmt.Println("\nTakeaway: at diameter 2, unreliable links stretch broadcast from O(1)-ish")
	fmt.Println("to Ω(n) — the separation that motivates the dual graph model.")
	return nil
}

func buildAlg(name string, n int) (dualgraph.Algorithm, error) {
	if name == "round-robin" {
		return dualgraph.NewRoundRobin(), nil
	}
	return dualgraph.NewStrongSelect(n)
}

func verdict(ok bool) string {
	if ok {
		return "respected"
	}
	return "VIOLATED"
}

// Megasweep: a million-trial Monte Carlo percentile sweep in bounded
// memory. RunMany would retain one Result per trial (hundreds of MB at this
// scale); RunStream folds every trial into ~256 shard accumulators as soon
// as it finishes, so resident memory stays flat no matter how many trials
// run — the aggregate below is bit-identical at any worker count, with
// exact counts/min/max/mean and P²-estimated quantiles.
//
//	go run ./examples/megasweep                 # 1,000,000 trials
//	go run ./examples/megasweep -trials 100000  # quicker demo
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"

	"dualgraph"
)

func main() {
	trials := flag.Int("trials", 1_000_000, "number of independently seeded trials")
	n := flag.Int("n", 8, "network size (line topology)")
	workers := flag.Int("workers", 0, "engine workers (0 = one per CPU); never changes the aggregate")
	seed := flag.Int64("seed", 42, "base seed; per-trial seeds are derived from it")
	flag.Parse()
	if err := run(*trials, *n, *workers, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(trials, n, workers int, seed int64) error {
	// A light workload so a million trials finish quickly: the uniform
	// baseline on a classical line, where completion time is genuinely
	// random (a geometric race along each hop).
	net, err := dualgraph.Line(n)
	if err != nil {
		return fmt.Errorf("build network: %w", err)
	}
	alg, err := dualgraph.NewUniform(0.4)
	if err != nil {
		return fmt.Errorf("build algorithm: %w", err)
	}

	sum, err := dualgraph.RunStream(net, alg, dualgraph.Benign{}, dualgraph.Config{
		Rule:  dualgraph.CR3,
		Start: dualgraph.SyncStart,
		Seed:  seed,
	}, trials, dualgraph.EngineConfig{Workers: workers}, dualgraph.StreamConfig{
		Quantiles: []float64{0.5, 0.9, 0.95, 0.99, 0.999},
	})
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}

	fmt.Printf("megasweep: %d trials of %s on a %d-node line (benign, CR3, sync)\n",
		sum.Trials, alg.Name(), n)
	fmt.Printf("completed: %d/%d\n", sum.Completed, sum.Trials)
	mean, _ := sum.Rounds.Mean()
	sd, _ := sum.Rounds.Stddev()
	min, _ := sum.Rounds.Min()
	max, _ := sum.Rounds.Max()
	fmt.Printf("rounds: mean=%.3f stddev=%.3f min=%.0f max=%.0f\n", mean, sd, min, max)
	for _, q := range sum.Rounds.Targets() {
		v, err := sum.Rounds.Quantile(q)
		if err != nil {
			return err
		}
		kind := "P² estimate"
		if sum.Rounds.Exact() {
			kind = "exact"
		}
		fmt.Printf("  p%-5v = %8.2f  (%s)\n", q*100, v, kind)
	}

	// The point of the exercise: live heap after a million trials is a few
	// MB of accumulators, not O(trials) of retained results.
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Printf("live heap after sweep: %.1f MB (memory bounded — no per-trial results retained)\n",
		float64(ms.HeapAlloc)/(1<<20))
	return nil
}

// Sensornet: the paper's motivating scenario. A grid of sensors has
// reliable short links and a "gray zone" of longer links that sometimes
// work (Lundgren et al.; Section 1 of the paper). Practitioners cull the
// gray-zone links with quality-assessment heuristics like ETX; the dual
// graph model instead keeps them and asks for algorithms that tolerate them
// under worst-case behaviour.
//
// This example compares the paper's algorithms on the same grid as the
// density of gray-zone links grows, under a benign and an adaptive
// adversary.
package main

import (
	"fmt"
	"log"
	"text/tabwriter"

	"dualgraph"

	"os"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		rows, cols = 6, 6
		n          = rows * cols
		trials     = 5
	)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "gray-zone p\talgorithm\tbenign median\tgreedy median")

	for _, p := range []float64{0.0, 0.2, 0.5} {
		net, err := dualgraph.Grid(rows, cols, 2, p, dualgraph.NewRand(7))
		if err != nil {
			return err
		}
		ss, err := dualgraph.NewStrongSelect(n)
		if err != nil {
			return err
		}
		h, err := dualgraph.NewHarmonicForN(n, 0.02)
		if err != nil {
			return err
		}
		for _, alg := range []dualgraph.Algorithm{dualgraph.NewRoundRobin(), ss, h} {
			benign, err := medianRounds(net, alg, dualgraph.Benign{}, trials)
			if err != nil {
				return err
			}
			greedy, err := medianRounds(net, alg, dualgraph.GreedyCollider{}, trials)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "%.1f\t%s\t%d\t%d\n", p, alg.Name(), benign, greedy)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Println("\nNote how extra gray-zone links never help against the adaptive")
	fmt.Println("adversary: it only deploys them to cause collisions.")
	return nil
}

func medianRounds(net *dualgraph.Network, alg dualgraph.Algorithm, adv dualgraph.Adversary, trials int) (int, error) {
	rounds := make([]int, 0, trials)
	for i := 0; i < trials; i++ {
		res, err := dualgraph.Run(net, alg, adv, dualgraph.Config{
			Rule:      dualgraph.CR4,
			Start:     dualgraph.AsyncStart,
			MaxRounds: 100000,
			Seed:      int64(i + 1),
		})
		if err != nil {
			return 0, err
		}
		if !res.Completed {
			return 0, fmt.Errorf("%s did not complete", alg.Name())
		}
		rounds = append(rounds, res.Rounds)
	}
	// insertion sort is fine for a handful of trials
	for i := 1; i < len(rounds); i++ {
		for j := i; j > 0 && rounds[j] < rounds[j-1]; j-- {
			rounds[j], rounds[j-1] = rounds[j-1], rounds[j]
		}
	}
	return rounds[len(rounds)/2], nil
}

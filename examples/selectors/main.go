// Selectors: build and inspect the strongly selective families (SSFs) that
// drive the deterministic Strong Select algorithm (Section 5), verify the
// selection property, and print the first rounds of a Strong Select
// schedule.
package main

import (
	"fmt"
	"log"

	"dualgraph"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// An (n,k)-strongly-selective family: for every subset Z of at most k
	// identifiers and every z in Z, some set isolates z from the rest of Z.
	const n, k = 24, 3
	fam, err := dualgraph.NewSelectiveFamily(n, k)
	if err != nil {
		return err
	}
	fmt.Printf("(%d,%d)-strongly-selective family with %d sets\n", n, k, fam.Size())
	if err := dualgraph.VerifySelectiveFamily(fam, k); err != nil {
		return fmt.Errorf("verification: %w", err)
	}
	fmt.Println("exhaustive verification: property holds")

	// Show a few sets.
	for set := 0; set < 4; set++ {
		var members []int
		for id := 1; id <= n; id++ {
			if fam.Contains(set, id) {
				members = append(members, id)
			}
		}
		fmt.Printf("  set %d: %v\n", set, members)
	}

	// A Strong Select schedule interleaves families of doubling selectivity
	// within epochs: round 1 runs F1, rounds 2-3 run F2, rounds 4-7 run F3...
	const netSize = 256
	ss, err := dualgraph.NewStrongSelect(netSize)
	if err != nil {
		return err
	}
	fmt.Printf("\nStrong Select for n=%d: %d scales, epoch length %d\n",
		netSize, ss.Smax(), ss.EpochLength())
	fmt.Println("first two epochs of the schedule (scale s runs family F_s):")
	for r := 1; r <= 2*ss.EpochLength(); r++ {
		slot := ss.SlotAt(r)
		fmt.Printf("  round %2d: scale %d, set index %3d (family size %d)\n",
			r, slot.Scale, slot.Set, ss.Family(slot.Scale).Size())
	}
	return nil
}

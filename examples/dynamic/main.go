// Dynamic: epidemic broadcast on time-varying networks. An epoch schedule
// rebuilds the dual graph every few rounds — node churn crashes radios,
// link fading demotes reliable links into the adversary's gray zone, and
// waypoint mobility moves the whole deployment — while algorithm and
// adversary state survive every swap. The sweep below treats the churn rate
// as an ordinary grid axis; the static cell is byte-identical to the
// fixed-topology engine at any worker count, and so is every dynamic cell,
// because each trial's epoch randomness is a pure function of its trial
// seed.
//
//	go run ./examples/dynamic
//	go run ./examples/dynamic -trials 50 -workers 2
package main

import (
	"flag"
	"fmt"
	"log"

	"dualgraph"
)

func main() {
	trials := flag.Int("trials", 20, "Monte Carlo trials per schedule cell")
	workers := flag.Int("workers", 0, "engine workers (0 = one per CPU); never changes the output")
	seed := flag.Int64("seed", 7, "base seed of every cell")
	flag.Parse()
	if err := run(*trials, *workers, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(trials, workers int, seed int64) error {
	base, err := dualgraph.NewScenario(
		dualgraph.WithTopology("geometric", nil),
		dualgraph.WithN(40),
		dualgraph.WithAlgorithm("harmonic", nil),
		dualgraph.WithAdversary("greedy", nil),
		dualgraph.WithSeed(seed),
	)
	if err != nil {
		return err
	}
	sweep := dualgraph.Sweep{
		Base: base,
		// The schedule axis: a static control, three churn intensities, link
		// fading, and random-waypoint mobility — one declarative value.
		Schedules: []dualgraph.Choice{
			{Name: "static"},
			{Name: "churn", Params: dualgraph.Params{"p-down": 0.05}},
			{Name: "churn", Params: dualgraph.Params{"p-down": 0.2}},
			{Name: "churn", Params: dualgraph.Params{"p-down": 0.4}},
			{Name: "fade", Params: dualgraph.Params{"p-fade": 0.5}},
			{Name: "waypoint", Params: dualgraph.Params{"leg-epochs": 2}},
		},
		Trials: trials,
	}
	grid, err := sweep.Run(dualgraph.EngineConfig{Workers: workers}, dualgraph.StreamConfig{})
	if err != nil {
		return err
	}
	fmt.Printf("dynamic: %d schedules × %d trials (identical at any worker count)\n",
		len(grid.Cells), grid.Trials)
	for _, cr := range grid.Cells {
		med, err := cr.Summary.Rounds.Quantile(0.5)
		if err != nil {
			return err
		}
		tx, err := cr.Summary.Transmissions.Mean()
		if err != nil {
			return err
		}
		fmt.Printf("  %-28s completed=%d/%d median-rounds=%.0f mean-transmissions=%.0f\n",
			cr.Cell.Label, cr.Summary.Completed, cr.Summary.Trials, med, tx)
	}

	// Dynamics are first-class in the Go API too: a churn schedule over any
	// base network plugs straight into RunDynamic.
	net, err := dualgraph.Geometric(40, 0.28, 0.7, dualgraph.NewRand(seed))
	if err != nil {
		return err
	}
	sched, err := dualgraph.NewChurnSchedule(net, 8, 0.2)
	if err != nil {
		return err
	}
	alg, err := dualgraph.NewHarmonicForN(net.N(), 0.02)
	if err != nil {
		return err
	}
	res, err := dualgraph.RunDynamic(sched, alg, dualgraph.GreedyCollider{}, dualgraph.Config{Seed: seed})
	if err != nil {
		return err
	}
	fmt.Printf("single dynamic run: completed=%v rounds=%d transmissions=%d\n",
		res.Completed, res.Rounds, res.Transmissions)
	return nil
}

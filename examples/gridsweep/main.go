// Gridsweep: a whole paper-style table as one declarative value. A Sweep
// lists the axes — here topology × algorithm × n — and the engine executes
// the Cartesian grid in parallel at (cell, shard) granularity, so the
// worker pool stays saturated whether the grid is wide or deep. Every cell
// summary is bit-identical at any -workers value and equal to running that
// cell's Scenario alone; the sweep itself round-trips through JSON, so the
// exact experiment can be committed, shipped, and rerun elsewhere
// (`dgsim -spec grid.json`).
//
//	go run ./examples/gridsweep
//	go run ./examples/gridsweep -trials 100 -workers 2
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"dualgraph"
)

func main() {
	trials := flag.Int("trials", 25, "Monte Carlo trials per grid cell")
	workers := flag.Int("workers", 0, "engine workers (0 = one per CPU); never changes the grid output")
	seed := flag.Int64("seed", 3, "base seed of every cell")
	emit := flag.Bool("emit-spec", false, "print the sweep as JSON (pipe to a file and rerun with dgsim -spec)")
	flag.Parse()
	if err := run(*trials, *workers, *seed, *emit); err != nil {
		log.Fatal(err)
	}
}

func run(trials, workers int, seed int64, emit bool) error {
	// The base scenario fixes everything the grid does not sweep: the
	// greedy collider, CR4, asynchronous start, and the seed.
	base, err := dualgraph.NewScenario(
		dualgraph.WithAdversary("greedy", nil),
		dualgraph.WithCollisionRule(dualgraph.CR4),
		dualgraph.WithStart(dualgraph.AsyncStart),
		dualgraph.WithSeed(seed),
	)
	if err != nil {
		return err
	}
	sweep := dualgraph.Sweep{
		Base: base,
		Topologies: []dualgraph.Choice{
			{Name: "clique-bridge"},
			{Name: "geometric"},
			{Name: "pa", Params: dualgraph.Params{"m": 2}},
		},
		Algorithms: []dualgraph.Choice{
			{Name: "strong-select"},
			{Name: "harmonic"},
		},
		Ns:     []int{17, 33},
		Trials: trials,
	}

	if emit {
		// The sweep IS the experiment: serialize it instead of running.
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(sweep)
	}

	grid, err := sweep.Run(dualgraph.EngineConfig{Workers: workers}, dualgraph.StreamConfig{})
	if err != nil {
		return err
	}
	fmt.Printf("gridsweep: %d cells × %d trials (identical at any worker count)\n",
		len(grid.Cells), grid.Trials)
	for _, cr := range grid.Cells {
		med, err := cr.Summary.Rounds.Quantile(0.5)
		if err != nil {
			return err
		}
		maxR, err := cr.Summary.Rounds.Max()
		if err != nil {
			return err
		}
		fmt.Printf("  %-55s completed=%d/%d median-rounds=%.0f max=%.0f\n",
			cr.Cell.Label, cr.Summary.Completed, cr.Summary.Trials, med, maxR)
	}
	return nil
}

// Adaptive: playing the universal quantifier online. The paper's adversary
// is a ∀ over delivery behaviours; exhaustive.Search evaluates that
// quantifier offline by enumerating every behaviour. The adaptive adversary
// plays it live instead — each round it searches the remaining game tree
// from the current reaching state and delivers the choice that maximizes
// the eventual completion round. With an unbounded horizon the two must
// agree exactly; bounding the horizon h (interference allowed only in
// rounds 1..h) trades strength for an opponent whose power is tunable.
package main

import (
	"fmt"
	"log"

	"dualgraph"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		n       = 6  // small enough for exhaustive search
		horizon = 48 // evaluation horizon shared by search and play
	)
	net, err := dualgraph.CliqueBridge(n)
	if err != nil {
		return err
	}
	alg, err := dualgraph.NewStrongSelect(n)
	if err != nil {
		return err
	}

	// The offline answer: enumerate every adversary behaviour.
	search, err := dualgraph.SearchWorstCase(net, alg, dualgraph.SearchConfig{
		Rule:    dualgraph.CR1,
		Horizon: horizon,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%d-node clique-bridge, %s, CR1\n\n", n, alg.Name())
	fmt.Printf("exhaustive search:  worst case %d rounds (%d branches explored)\n",
		search.WorstRounds, search.Branches)

	// The online answer: the adaptive adversary re-derives the same bound by
	// playing best responses, one round at a time.
	adaptive, err := dualgraph.NewAdaptiveAdversary(0, horizon, 0, 0)
	if err != nil {
		return err
	}
	res, err := dualgraph.Run(net, alg, adaptive, dualgraph.Config{
		Rule:      dualgraph.CR1,
		Start:     dualgraph.SyncStart,
		MaxRounds: horizon,
	})
	if err != nil {
		return err
	}
	fmt.Printf("adaptive(h=∞) play: broadcast took %d rounds — %s\n\n",
		res.Rounds, verdict(res.Completed && res.Rounds == search.WorstRounds))

	// Bounding the horizon weakens the opponent monotonically: deliveries
	// are allowed only in rounds 1..h, so each h's strategies nest inside
	// the next.
	fmt.Println("delivery horizon sweep (interference allowed only in rounds 1..h):")
	for _, h := range []int{1, 2, 3, 4} {
		capped, err := dualgraph.NewAdaptiveAdversary(h, horizon, 0, 0)
		if err != nil {
			return err
		}
		r, err := dualgraph.Run(net, alg, capped, dualgraph.Config{
			Rule:      dualgraph.CR1,
			Start:     dualgraph.SyncStart,
			MaxRounds: horizon,
		})
		if err != nil {
			return err
		}
		fmt.Printf("  h=%d: %d rounds\n", h, r.Rounds)
	}
	fmt.Println("\nTakeaway: the adaptive adversary is the exhaustive worst case made")
	fmt.Println("playable — it composes with any engine feature (sweeps, dynamic")
	fmt.Println("schedules, checkpointing) because it is just another adversary.")
	return nil
}

func verdict(ok bool) string {
	if ok {
		return "matches the exhaustive bound"
	}
	return "MISMATCH"
}
